// Linear Temporal Logic formulas (Def. 8), as hash-consed immutable DAG
// nodes: structurally equal formulas share one node, so semantic sets in the
// tableau construction can use pointer identity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "decmon/ltl/atoms.hpp"

namespace decmon {

enum class LtlOp {
  kTrue,
  kFalse,
  kAtom,
  kNot,
  kAnd,
  kOr,
  kNext,     // X f
  kUntil,    // f U g
  kRelease,  // f R g  (dual of U)
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// One LTL formula node. Construct only through the factory functions below;
/// they hash-cons, so `a == b` as pointers iff structurally equal (after the
/// light constant-folding the factories perform).
class Formula : public std::enable_shared_from_this<Formula> {
 public:
  LtlOp op() const { return op_; }
  int atom() const { return atom_; }
  const FormulaPtr& lhs() const { return lhs_; }
  const FormulaPtr& rhs() const { return rhs_; }

  bool is_true() const { return op_ == LtlOp::kTrue; }
  bool is_false() const { return op_ == LtlOp::kFalse; }
  bool is_literal() const {
    return op_ == LtlOp::kAtom ||
           (op_ == LtlOp::kNot && lhs_->op_ == LtlOp::kAtom);
  }
  bool is_temporal() const {
    return op_ == LtlOp::kNext || op_ == LtlOp::kUntil ||
           op_ == LtlOp::kRelease;
  }

  /// Number of nodes in the DAG-unfolded syntax tree (for size metrics).
  std::size_t tree_size() const;

  /// Atoms referenced by the formula, as a bitmask.
  AtomSet atom_mask() const { return atom_mask_; }

  /// Render with minimal parentheses; atom names from `reg` if given.
  std::string to_string(const AtomRegistry* reg = nullptr) const;

 private:
  friend class FormulaFactory;
  Formula() = default;

  LtlOp op_ = LtlOp::kTrue;
  int atom_ = -1;
  FormulaPtr lhs_;
  FormulaPtr rhs_;
  AtomSet atom_mask_ = 0;
};

// ---- factory functions (hash-consing + constant folding) ----
FormulaPtr f_true();
FormulaPtr f_false();
FormulaPtr f_atom(int atom_id);
FormulaPtr f_not(FormulaPtr f);
FormulaPtr f_and(FormulaPtr a, FormulaPtr b);
FormulaPtr f_or(FormulaPtr a, FormulaPtr b);
FormulaPtr f_next(FormulaPtr f);
FormulaPtr f_until(FormulaPtr a, FormulaPtr b);
FormulaPtr f_release(FormulaPtr a, FormulaPtr b);

// Derived operators.
FormulaPtr f_implies(FormulaPtr a, FormulaPtr b);
FormulaPtr f_iff(FormulaPtr a, FormulaPtr b);
FormulaPtr f_eventually(FormulaPtr f);  // F f == true U f
FormulaPtr f_always(FormulaPtr f);      // G f == false R f

/// Conjunction / disjunction over a list (empty list => true / false).
FormulaPtr f_and_all(const std::vector<FormulaPtr>& fs);
FormulaPtr f_or_all(const std::vector<FormulaPtr>& fs);

/// Negation-normal form: negations pushed to atoms, using R as dual of U.
/// Factories already produce NNF for everything except kNot over composite
/// operands; this resolves those.
FormulaPtr to_nnf(const FormulaPtr& f);

}  // namespace decmon
