// Atomic propositions over per-process variables.
//
// The paper's predicates are boolean combinations of *local* propositions,
// each owned by exactly one process (processes share no variables, §2.1).
// An atom is a comparison `var OP constant` against one variable of one
// process; boolean propositions such as `P0.p` are the special case
// `p != 0`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace decmon {

/// Comparison operator of an atomic proposition.
enum class CmpOp { kLt, kLe, kEq, kNe, kGe, kGt };

std::string to_string(CmpOp op);

/// Valuation of one process's variables, indexed by per-process variable id.
using LocalState = std::vector<std::int64_t>;

/// Valuation of all processes' variables (a global state, Def. 3).
using GlobalState = std::vector<LocalState>;

/// Set of atoms holding in a state, as a bitmask (atom id = bit index).
using AtomSet = std::uint64_t;

/// One atomic proposition: `process.var OP rhs`.
struct Atom {
  int id = -1;            ///< dense id, also the bit index in an AtomSet
  std::string name;       ///< display name, e.g. "P0.p" or "x1>=5"
  int process = -1;       ///< owning process
  int var = -1;           ///< variable index within the process's LocalState
  CmpOp op = CmpOp::kNe;  ///< comparison
  std::int64_t rhs = 0;   ///< right-hand constant

  /// Does the atom hold for this variable value?
  bool holds(std::int64_t value) const;

  /// Does the atom hold in this local state? (variable missing => 0)
  bool holds_in(const LocalState& s) const;
};

/// Registry of variables and atoms for a monitored system.
///
/// Usage: declare each process's variables up front, then obtain atoms either
/// by name (boolean propositions) or as comparisons. The parser resolves
/// identifiers through this registry. Atom ids are dense and stable.
class AtomRegistry {
 public:
  explicit AtomRegistry(int num_processes = 0);

  int num_processes() const { return num_processes_; }
  void set_num_processes(int n);

  /// Declare variable `name` on process `proc`; returns its variable id.
  /// Declaring an existing variable returns the existing id.
  int declare_variable(int proc, const std::string& name);

  /// Variable id for `name` on `proc`, if declared.
  std::optional<int> find_variable(int proc, const std::string& name) const;

  /// Number of variables declared on `proc`.
  int num_variables(int proc) const;

  /// Variable name for (proc, var).
  const std::string& variable_name(int proc, int var) const;

  /// Atom for the comparison `proc.var OP rhs`; created on first request.
  int comparison_atom(int proc, int var, CmpOp op, std::int64_t rhs);

  /// Atom for the boolean proposition `proc.var != 0`.
  int boolean_atom(int proc, int var);

  /// Resolve a dotted name "P<k>.<var>" to its boolean atom, declaring the
  /// variable if needed. Returns std::nullopt if the name does not follow the
  /// convention or k is out of range.
  std::optional<int> resolve_boolean(const std::string& dotted);

  /// Resolve a bare variable name (searched across processes; must be
  /// unique) to (proc, var). Used by the parser for `x1 >= 5` style atoms.
  std::optional<std::pair<int, int>> resolve_bare(const std::string& name) const;

  const Atom& atom(int id) const { return atoms_.at(static_cast<std::size_t>(id)); }
  int num_atoms() const { return static_cast<int>(atoms_.size()); }
  const std::vector<Atom>& atoms() const { return atoms_; }

  /// Evaluate all atoms against a global state; bit i set iff atom i holds.
  AtomSet evaluate(const GlobalState& g) const;

  /// Evaluate only the atoms owned by `proc` against its local state;
  /// non-owned bits are left clear.
  AtomSet evaluate_local(int proc, const LocalState& s) const;

  /// Bitmask of the atoms owned by `proc`.
  AtomSet owned_mask(int proc) const;

 private:
  int intern_atom(Atom a);

  int num_processes_ = 0;
  std::vector<std::vector<std::string>> var_names_;  // [proc][var]
  std::vector<std::unordered_map<std::string, int>> var_ids_;  // [proc]
  std::vector<Atom> atoms_;
  std::unordered_map<std::string, int> atom_ids_;  // canonical key -> id
};

}  // namespace decmon
