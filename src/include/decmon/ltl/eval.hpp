// Exact LTL semantics over ultimately-periodic (lasso) words.
//
// A lasso word is u · v^omega with finite prefix u and non-empty loop v,
// each position an AtomSet. Evaluation is bottom-up per subformula with
// fixpoint iteration for U (least) and R (greatest) on the cyclic position
// graph, so the result is exact, not an approximation. This is the
// independent ground truth the automata tests compare against.
#pragma once

#include <vector>

#include "decmon/ltl/atoms.hpp"
#include "decmon/ltl/formula.hpp"

namespace decmon {

/// Does `u . v^omega` satisfy `f`? `loop` must be non-empty.
bool lasso_satisfies(const FormulaPtr& f, const std::vector<AtomSet>& prefix,
                     const std::vector<AtomSet>& loop);

/// Enumerate every lasso word over `num_atoms` atoms with |prefix| = plen and
/// |loop| = llen (exponential; only for tiny tests). Invokes `fn(prefix,
/// loop)`; stops early if `fn` returns false.
template <typename Fn>
void for_each_lasso(int num_atoms, int plen, int llen, Fn&& fn) {
  const AtomSet letters = AtomSet{1} << num_atoms;
  std::vector<AtomSet> prefix(static_cast<std::size_t>(plen));
  std::vector<AtomSet> loop(static_cast<std::size_t>(llen));
  const int total = plen + llen;
  std::vector<AtomSet> word(static_cast<std::size_t>(total), 0);
  while (true) {
    for (int i = 0; i < plen; ++i) prefix[static_cast<std::size_t>(i)] = word[static_cast<std::size_t>(i)];
    for (int i = 0; i < llen; ++i) loop[static_cast<std::size_t>(i)] = word[static_cast<std::size_t>(plen + i)];
    if (!fn(prefix, loop)) return;
    int i = total - 1;
    while (i >= 0) {
      if (++word[static_cast<std::size_t>(i)] < letters) break;
      word[static_cast<std::size_t>(i)] = 0;
      --i;
    }
    if (i < 0) return;
  }
}

}  // namespace decmon
