// Recursive-descent parser for LTL formulas over per-process propositions.
//
// Syntax (precedence low to high):
//   iff     :=  impl ('<->' impl)*
//   impl    :=  or ('->' impl)?                 right-associative
//   or      :=  and ('||' and)*
//   and     :=  until ('&&' until)*
//   until   :=  unary (('U' | 'R' | 'W') until)?  right-associative
//   unary   :=  ('!' | 'X' | 'F' | 'G' | '<>' | '[]') unary | primary
//   primary :=  'true' | 'false' | '(' iff ')' | atom
//   atom    :=  IDENT (CMP INT)?
//
// Atoms: `P0.p` is the boolean proposition `p != 0` on process 0; `x1 >= 5`
// compares the (unique) variable `x1` of whichever process declared it.
// `W` is weak until: `a W b == (a U b) || G a`.
#pragma once

#include <stdexcept>
#include <string>

#include "decmon/ltl/atoms.hpp"
#include "decmon/ltl/formula.hpp"

namespace decmon {

/// Error raised on malformed input; carries the offending position.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t pos)
      : std::runtime_error(what + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}
  std::size_t position() const { return pos_; }

 private:
  std::size_t pos_;
};

/// Parse `text` into a formula, resolving atoms through `registry`.
/// Boolean propositions of the form P<k>.<name> are declared on demand;
/// bare comparison variables must already be declared.
FormulaPtr parse_ltl(const std::string& text, AtomRegistry& registry);

}  // namespace decmon
