#include "decmon/distributed/reliable_channel.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "decmon/monitor/wire.hpp"
#include "decmon/util/rng.hpp"

namespace decmon {
namespace {

constexpr std::uint8_t kChannelBlobVersion = 1;
constexpr std::uint8_t kChannelMagic[4] = {'D', 'M', 'C', 'H'};
// Retransmit-at-or-before tolerance: a timer fired exactly at a deadline
// must count that entry as due despite floating-point time arithmetic.
constexpr double kDeadlineEps = 1e-9;
constexpr std::size_t kPoolCap = 64;

std::uint64_t splitmix_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::unique_ptr<NetPayload> ChannelEnvelope::clone() const {
  auto copy = std::make_unique<ChannelEnvelope>();
  copy->seq = seq;
  copy->ack = ack;
  copy->bytes = bytes;
  if (inner) {
    if (auto inner_copy = inner->clone()) {
      copy->inner = std::move(inner_copy);
    } else {
      // Payload type without deep-copy support: fall back to its wire form
      // so a duplicated delivery still carries the data.
      encode_payload_into(*inner, copy->bytes);
    }
  }
  return copy;
}

std::string ReliableChannelConfig::to_string() const {
  std::ostringstream os;
  os << "rto " << rto << " backoff " << backoff << " backoff_cap "
     << backoff_cap << " jitter " << jitter << " seed " << seed;
  return os.str();
}

ReliableChannel::ReliableChannel(MonitorNetwork* inner, int num_processes,
                                 ReliableChannelConfig config)
    : inner_(inner), n_(num_processes), config_(config) {
  if (!inner) throw std::invalid_argument("ReliableChannel: null inner network");
  if (n_ <= 0) throw std::invalid_argument("ReliableChannel: bad process count");
  nodes_.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    auto ns = std::make_unique<NodeState>();
    ns->links.resize(static_cast<std::size_t>(n_));
    ns->jitter_rng =
        derive_seed(config_.seed, 0xC4A7ull + static_cast<std::uint64_t>(i));
    nodes_.push_back(std::move(ns));
  }
}

ReliableChannel::NodeState& ReliableChannel::node(int i) const {
  if (i < 0 || i >= n_) {
    throw std::out_of_range("ReliableChannel: bad node index");
  }
  return *nodes_[static_cast<std::size_t>(i)];
}

std::unique_ptr<ChannelEnvelope> ReliableChannel::acquire_envelope(
    NodeState& ns) {
  if (!ns.envelope_pool.empty()) {
    auto env = std::move(ns.envelope_pool.back());
    ns.envelope_pool.pop_back();
    return env;
  }
  return std::make_unique<ChannelEnvelope>();
}

void ReliableChannel::recycle_envelope(NodeState& ns,
                                       std::unique_ptr<ChannelEnvelope> env) {
  if (!env || ns.envelope_pool.size() >= kPoolCap) return;
  env->seq = 0;
  env->ack = 0;
  env->inner.reset();
  recycle_buffer(ns, std::move(env->bytes));
  env->bytes.clear();
  ns.envelope_pool.push_back(std::move(env));
}

std::vector<std::uint8_t> ReliableChannel::acquire_buffer(NodeState& ns) {
  if (!ns.buffer_pool.empty()) {
    std::vector<std::uint8_t> buf = std::move(ns.buffer_pool.back());
    ns.buffer_pool.pop_back();
    buf.clear();
    return buf;
  }
  return {};
}

void ReliableChannel::recycle_buffer(NodeState& ns,
                                     std::vector<std::uint8_t>&& buf) {
  if (buf.capacity() == 0 || ns.buffer_pool.size() >= kPoolCap) return;
  buf.clear();
  ns.buffer_pool.push_back(std::move(buf));
}

double ReliableChannel::jitter_uniform(NodeState& ns) {
  return static_cast<double>(splitmix_next(ns.jitter_rng) >> 11) * 0x1.0p-53;
}

double ReliableChannel::backoff_interval(NodeState& ns, int attempts) {
  // Attempts are unbounded (every payload is retransmitted until acked --
  // the delivery guarantee the stack above depends on); only the interval
  // saturates. Multiply iteratively: std::pow rounding is not guaranteed
  // identical across libms and the schedule must replay bit-exactly.
  int exponent = attempts - 1;
  if (exponent > config_.backoff_cap) exponent = config_.backoff_cap;
  if (exponent < 0) exponent = 0;
  double interval = config_.rto;
  for (int i = 0; i < exponent; ++i) interval *= config_.backoff;
  if (config_.jitter > 0.0) {
    interval *= 1.0 + config_.jitter * jitter_uniform(ns);
  }
  return interval;
}

void ReliableChannel::arm_timer(NodeState& ns, int self, double deadline) {
  if (ns.timer_armed) return;
  ns.timer_armed = true;
  std::unique_ptr<ChannelTimer> timer;
  if (!ns.timer_pool.empty()) {
    timer = std::move(ns.timer_pool.back());
    ns.timer_pool.pop_back();
  } else {
    timer = std::make_unique<ChannelTimer>();
  }
  DeliveryPerturbation p;
  p.extra_delay = deadline - inner_->now();
  if (p.extra_delay < 0.0) p.extra_delay = 0.0;
  p.bypass_fifo = true;
  // Sending while holding ns.mu is safe: every runtime enqueues monitor
  // messages, none delivers synchronously from send.
  inner_->send_perturbed(MonitorMessage{self, self, std::move(timer)}, p);
}

void ReliableChannel::apply_ack(NodeState& ns, int peer, std::uint64_t ack) {
  for (std::size_t i = 0; i < ns.unacked.size();) {
    Unacked& u = ns.unacked[i];
    if (u.to == peer && u.seq <= ack) {
      recycle_buffer(ns, std::move(u.bytes));
      u = std::move(ns.unacked.back());
      ns.unacked.pop_back();
    } else {
      ++i;
    }
  }
}

void ReliableChannel::send_pure_ack(NodeState& ns, int from_node,
                                    int to_node) {
  auto env = acquire_envelope(ns);
  env->seq = 0;
  env->ack = ns.links[static_cast<std::size_t>(to_node)].recv_cum;
  ++ns.stats.acks_sent;
  DeliveryPerturbation p;
  p.bypass_fifo = true;  // acks never hold the data FIFO
  inner_->send_perturbed(MonitorMessage{from_node, to_node, std::move(env)},
                         p);
}

void ReliableChannel::send_perturbed(MonitorMessage msg,
                                     const DeliveryPerturbation& perturbation) {
  if (!msg.payload) return;
  const int from = msg.from;
  const int to = msg.to;
  NodeState& ns = node(from);
  std::unique_ptr<ChannelEnvelope> env;
  {
    std::lock_guard<std::mutex> lock(ns.mu);
    Link& link = ns.links[static_cast<std::size_t>(to)];
    Unacked entry;
    entry.seq = link.next_seq++;
    entry.to = to;
    entry.attempts = 1;
    entry.bytes = acquire_buffer(ns);
    encode_payload_into(*msg.payload, entry.bytes);
    entry.deadline = inner_->now() + backoff_interval(ns, 1);
    const double deadline = entry.deadline;
    env = acquire_envelope(ns);
    env->seq = entry.seq;
    env->ack = link.recv_cum;
    env->inner = std::move(msg.payload);
    ns.unacked.push_back(std::move(entry));
    ++ns.stats.data_sent;
    arm_timer(ns, from, deadline);
  }
  inner_->send_perturbed(MonitorMessage{from, to, std::move(env)},
                         perturbation);
}

void ReliableChannel::send(MonitorMessage msg) {
  send_perturbed(std::move(msg), DeliveryPerturbation{});
}

void ReliableChannel::on_local_event(int proc, const Event& event,
                                     double now) {
  hooks_->on_local_event(proc, event, now);
}

void ReliableChannel::on_local_termination(int proc, double now) {
  hooks_->on_local_termination(proc, now);
}

void ReliableChannel::on_monitor_message(MonitorMessage msg, double now) {
  if (!msg.payload) return;
  const std::uint8_t tag = msg.payload->tag;
  if (tag == ChannelTimer::kTag) {
    std::unique_ptr<ChannelTimer> timer(
        static_cast<ChannelTimer*>(msg.payload.release()));
    on_timer(msg.to, std::move(timer), now);
    return;
  }
  if (tag == ChannelEnvelope::kTag) {
    std::unique_ptr<ChannelEnvelope> env(
        static_cast<ChannelEnvelope*>(msg.payload.release()));
    on_envelope(msg.from, msg.to, std::move(env), now);
    return;
  }
  // Unwrapped payload (a layer below was not stacked through this channel):
  // pass it straight up.
  hooks_->on_monitor_message(std::move(msg), now);
}

void ReliableChannel::on_envelope(int from, int to,
                                  std::unique_ptr<ChannelEnvelope> env,
                                  double now) {
  NodeState& ns = node(to);
  std::unique_ptr<NetPayload> payload;
  {
    std::lock_guard<std::mutex> lock(ns.mu);
    apply_ack(ns, from, env->ack);
    if (env->seq == 0) {  // pure ack
      recycle_envelope(ns, std::move(env));
      return;
    }
    Link& link = ns.links[static_cast<std::size_t>(from)];
    const std::uint64_t seq = env->seq;
    const bool duplicate =
        seq <= link.recv_cum ||
        std::binary_search(link.recv_ooo.begin(), link.recv_ooo.end(), seq);
    if (duplicate) {
      // The ack covering this seq was lost or is still in flight; re-ack so
      // the sender's retransmit loop terminates.
      ++ns.stats.dup_suppressed;
      recycle_envelope(ns, std::move(env));
      send_pure_ack(ns, to, from);
      return;
    }
    if (seq == link.recv_cum + 1) {
      ++link.recv_cum;
      auto it = link.recv_ooo.begin();
      while (it != link.recv_ooo.end() && *it == link.recv_cum + 1) {
        ++link.recv_cum;
        ++it;
      }
      link.recv_ooo.erase(link.recv_ooo.begin(), it);
    } else {
      link.recv_ooo.insert(
          std::lower_bound(link.recv_ooo.begin(), link.recv_ooo.end(), seq),
          seq);
    }
    if (env->inner) {
      payload = std::move(env->inner);
    } else {
      // Retransmission: the original payload object travelled with the first
      // copy; rebuild this one from the sender-retained bytes.
      payload = decode_payload(env->bytes, static_cast<std::size_t>(n_));
    }
    recycle_envelope(ns, std::move(env));
    send_pure_ack(ns, to, from);
  }
  // Forward outside the lock: the monitor's processing may send, which
  // re-enters this node's state.
  hooks_->on_monitor_message(MonitorMessage{from, to, std::move(payload)},
                             now);
}

void ReliableChannel::on_timer(int self,
                               std::unique_ptr<ChannelTimer> timer,
                               double now) {
  NodeState& ns = node(self);
  std::vector<MonitorMessage> out;
  {
    std::lock_guard<std::mutex> lock(ns.mu);
    ns.timer_armed = false;
    ++ns.stats.timer_fires;
    if (ns.timer_pool.size() < kPoolCap) {
      ns.timer_pool.push_back(std::move(timer));
    }
    double next_deadline = 0.0;
    bool have_next = false;
    for (Unacked& u : ns.unacked) {
      if (u.deadline <= now + kDeadlineEps) {
        ++u.attempts;
        u.deadline = now + backoff_interval(ns, u.attempts);
        auto env = acquire_envelope(ns);
        env->seq = u.seq;
        env->ack = ns.links[static_cast<std::size_t>(u.to)].recv_cum;
        env->bytes = acquire_buffer(ns);
        env->bytes.assign(u.bytes.begin(), u.bytes.end());
        ++ns.stats.retransmissions;
        out.push_back(MonitorMessage{self, u.to, std::move(env)});
      }
      if (!have_next || u.deadline < next_deadline) {
        next_deadline = u.deadline;
        have_next = true;
      }
    }
    if (have_next) arm_timer(ns, self, next_deadline);
  }
  for (MonitorMessage& msg : out) {
    DeliveryPerturbation p;
    p.bypass_fifo = true;  // retransmissions do not hold the channel FIFO
    inner_->send_perturbed(std::move(msg), p);
  }
}

ChannelStats ReliableChannel::stats(int node_index) const {
  NodeState& ns = node(node_index);
  std::lock_guard<std::mutex> lock(ns.mu);
  return ns.stats;
}

ChannelStats ReliableChannel::total_stats() const {
  ChannelStats total;
  for (int i = 0; i < n_; ++i) total += stats(i);
  return total;
}

std::size_t ReliableChannel::unacked_count(int node_index) const {
  NodeState& ns = node(node_index);
  std::lock_guard<std::mutex> lock(ns.mu);
  return ns.unacked.size();
}

std::vector<std::uint8_t> ReliableChannel::save_node(int node_index) const {
  NodeState& ns = node(node_index);
  std::lock_guard<std::mutex> lock(ns.mu);
  std::vector<std::uint8_t> blob;
  WireWriter w(blob);
  for (std::uint8_t b : kChannelMagic) w.u8(b);
  w.u8(kChannelBlobVersion);
  w.u32(static_cast<std::uint32_t>(n_));
  for (const Link& link : ns.links) {
    w.u64(link.next_seq);
    w.u64(link.recv_cum);
    w.u32(static_cast<std::uint32_t>(link.recv_ooo.size()));
    for (std::uint64_t s : link.recv_ooo) w.u64(s);
  }
  w.u32(static_cast<std::uint32_t>(ns.unacked.size()));
  for (const Unacked& u : ns.unacked) {
    w.u64(u.seq);
    w.u32(static_cast<std::uint32_t>(u.to));
    w.u32(static_cast<std::uint32_t>(u.attempts));
    w.u32(static_cast<std::uint32_t>(u.bytes.size()));
    for (std::uint8_t b : u.bytes) w.u8(b);
  }
  w.u64(ns.jitter_rng);
  w.u32(wire_crc32(blob.data(), blob.size()));
  return blob;
}

void ReliableChannel::restore_node(int node_index,
                                   const std::vector<std::uint8_t>& blob,
                                   double now) {
  // Decode fully into locals before touching node state: a corrupt blob
  // must throw without leaving the node half-restored.
  if (blob.size() < 4) throw WireError("channel blob truncated");
  const std::uint32_t crc = wire_crc32(blob.data(), blob.size() - 4);
  WireReader r(blob);
  for (std::uint8_t b : kChannelMagic) {
    if (r.u8() != b) throw WireError("bad channel blob magic");
  }
  if (r.u8() != kChannelBlobVersion) {
    throw WireError("unsupported channel blob version");
  }
  if (r.u32() != static_cast<std::uint32_t>(n_)) {
    throw WireError("channel blob process count mismatch");
  }
  std::vector<Link> links(static_cast<std::size_t>(n_));
  for (Link& link : links) {
    link.next_seq = r.u64();
    link.recv_cum = r.u64();
    const std::uint32_t ooo = r.u32();
    if (ooo > (1u << 20)) throw WireError("channel blob ooo set too large");
    link.recv_ooo.reserve(ooo);
    std::uint64_t prev = 0;
    for (std::uint32_t i = 0; i < ooo; ++i) {
      const std::uint64_t s = r.u64();
      if (s <= link.recv_cum || (i > 0 && s <= prev)) {
        throw WireError("channel blob ooo set not strictly ascending");
      }
      prev = s;
      link.recv_ooo.push_back(s);
    }
  }
  const std::uint32_t unacked_n = r.u32();
  if (unacked_n > (1u << 20)) throw WireError("channel blob too many unacked");
  std::vector<Unacked> unacked;
  unacked.reserve(unacked_n);
  for (std::uint32_t i = 0; i < unacked_n; ++i) {
    Unacked u;
    u.seq = r.u64();
    const std::uint32_t to = r.u32();
    if (to >= static_cast<std::uint32_t>(n_)) {
      throw WireError("channel blob bad destination");
    }
    u.to = static_cast<int>(to);
    u.attempts = static_cast<int>(r.u32());
    const std::uint32_t len = r.u32();
    if (len > (1u << 24)) throw WireError("channel blob payload too large");
    u.bytes.reserve(len);
    for (std::uint32_t j = 0; j < len; ++j) u.bytes.push_back(r.u8());
    // Validate now: a restored payload that cannot decode would otherwise
    // only surface when retransmitted into a peer.
    (void)decode_payload(u.bytes, static_cast<std::size_t>(n_));
    unacked.push_back(std::move(u));
  }
  std::uint64_t jitter_rng = r.u64();
  if (r.u32() != crc) throw WireError("channel blob CRC mismatch");
  r.done();

  NodeState& ns = node(node_index);
  std::lock_guard<std::mutex> lock(ns.mu);
  ns.links = std::move(links);
  ns.unacked = std::move(unacked);
  ns.jitter_rng = jitter_rng;
  // Any pre-crash timer message was lost with the node; re-base deadlines
  // and arm a fresh timer so retransmission resumes. Deadlines are rebased
  // WITHOUT drawing jitter: restore must not advance the saved jitter
  // stream, so that save -> restore -> save round-trips byte-identically.
  ns.timer_armed = false;
  double next_deadline = 0.0;
  bool have_next = false;
  for (Unacked& u : ns.unacked) {
    int exponent = u.attempts - 1;
    if (exponent > config_.backoff_cap) exponent = config_.backoff_cap;
    if (exponent < 0) exponent = 0;
    double interval = config_.rto;
    for (int i = 0; i < exponent; ++i) interval *= config_.backoff;
    u.deadline = now + interval;
    if (!have_next || u.deadline < next_deadline) {
      next_deadline = u.deadline;
      have_next = true;
    }
  }
  if (have_next) arm_timer(ns, node_index, next_deadline);
}

}  // namespace decmon
