#include "decmon/distributed/schedule_fuzz.hpp"

#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "decmon/distributed/reliable_channel.hpp"
#include "decmon/distributed/replay_runtime.hpp"
#include "decmon/distributed/sim_runtime.hpp"
#include "decmon/lattice/event_log.hpp"
#include "decmon/lattice/oracle.hpp"
#include "decmon/monitor/decentralized_monitor.hpp"
#include "decmon/monitor/predicate.hpp"
#include "decmon/util/rng.hpp"

namespace decmon::fuzz {
namespace {

/// Everything that determines one fuzz case. A repro is exactly a
/// serialized CaseSpec (plus, for replay cases, the recorded computation).
struct CaseSpec {
  paper::Property property = paper::Property::kA;
  int num_processes = 2;
  Mode mode = Mode::kSim;
  int internal_events = 5;
  double comm_mu = 4.0;
  std::uint64_t trace_seed = 1;
  std::uint64_t sim_seed = 1;
  std::uint64_t schedule_seed = 1;  ///< replay mode only
  std::size_t oracle_max_nodes = std::size_t{1} << 22;
  FaultConfig fault;
  bool reliable_channel = false;
  ReliableChannelConfig channel;
  CrashPlan crash;  ///< node < 0 means no crash
  bool gc = false;  ///< streaming posture with an aggressive GC cadence
};

/// Sweep cadence for gc cases: every 3 local events, so trims interleave
/// with parked tokens and in-flight probes as tightly as possible.
constexpr std::uint32_t kFuzzGcInterval = 3;

struct CaseOutcome {
  std::set<Verdict> oracle;
  std::set<Verdict> monitor;
  bool all_finished = false;
  FaultStats faults;
  ChannelStats channel;
  CrashStats crash;
  Computation comp;  ///< the history the oracle was evaluated on
};

paper::Property property_from_name(const std::string& name) {
  for (paper::Property p : paper::kAllProperties) {
    if (paper::name(p) == name) return p;
  }
  throw std::runtime_error("fuzz repro: unknown property " + name);
}

char verdict_char(Verdict v) {
  switch (v) {
    case Verdict::kTrue: return 'T';
    case Verdict::kFalse: return 'F';
    case Verdict::kUnknown: break;
  }
  return '?';
}

std::string show_verdicts(const std::set<Verdict>& vs) {
  std::string s;
  for (Verdict v : vs) {
    if (!s.empty()) s += ' ';
    s += verdict_char(v);
  }
  return s.empty() ? "-" : s;
}

/// The fault-tolerance stack of one case: FaultyNetwork below, optional
/// ReliableChannel above it, optional CrashInjector on the delivery side.
/// Owns nothing but wiring; `monitors` is constructed by the caller against
/// net() and attached afterwards.
struct CaseStack {
  CaseStack(const CaseSpec& spec, MonitorNetwork* runtime_net)
      : faulty(runtime_net, spec.num_processes, spec.fault) {
    if (spec.reliable_channel || spec.crash.node >= 0) {
      channel.emplace(&faulty, spec.num_processes, spec.channel);
    }
  }

  /// The network monitors send through.
  MonitorNetwork* net() {
    return channel ? static_cast<MonitorNetwork*>(&*channel) : &faulty;
  }

  /// Finish wiring: deliveries flow runtime -> [injector ->] [channel ->]
  /// monitors. Returns the hooks the runtime must call.
  MonitorHooks* attach(const CaseSpec& spec, DecentralizedMonitor* monitors) {
    MonitorHooks* hooks = monitors;
    if (channel) {
      channel->set_hooks(monitors);
      hooks = &*channel;
    }
    if (spec.crash.node >= 0) {
      if (!channel) {
        throw std::invalid_argument(
            "fuzz: crash injection requires the reliable channel");
      }
      injector.emplace(hooks, monitors, &*channel, spec.crash);
      hooks = &*injector;
    }
    return hooks;
  }

  void collect(CaseOutcome& out) {
    out.faults = faulty.stats();
    if (channel) out.channel = channel->total_stats();
    if (injector) out.crash = injector->stats();
  }

  FaultyNetwork faulty;
  std::optional<ReliableChannel> channel;
  std::optional<CrashInjector> injector;
};

/// Run one case. `recorded` (replay repros) substitutes for regenerating
/// the computation; null means record it fresh from the trace seeds.
CaseOutcome execute_case(const CaseSpec& spec, const Computation* recorded) {
  AtomRegistry registry = paper::make_registry(spec.num_processes);
  MonitorAutomaton automaton =
      paper::build_automaton(spec.property, spec.num_processes, registry);
  automaton.build_dispatch();
  CompiledProperty prop(&automaton, &registry);

  const TraceParams params = paper::experiment_params(
      spec.property, spec.num_processes, spec.trace_seed, spec.comm_mu,
      /*comm_enabled=*/true, spec.internal_events);
  SimConfig sim;
  sim.seed = spec.sim_seed;
  MonitorOptions mopts;
  if (spec.gc) {
    mopts.streaming = true;
    mopts.gc_interval = kFuzzGcInterval;
  }

  CaseOutcome out;
  if (spec.mode == Mode::kSim) {
    SimRuntime runtime(generate_trace(params), &registry, sim);
    CaseStack stack(spec, &runtime);
    DecentralizedMonitor monitors(
        &prop, stack.net(),
        initial_letters_of(registry, runtime.initial_states()), mopts);
    runtime.set_hooks(stack.attach(spec, &monitors));
    runtime.run();
    out.comp = Computation(runtime.history());
    stack.collect(out);
    const SystemVerdict v = monitors.result();
    out.monitor = v.verdicts;
    out.all_finished = v.all_finished;
  } else {
    if (recorded) {
      out.comp = *recorded;
    } else {
      SimRuntime base(generate_trace(params), &registry, sim);
      base.run();
      out.comp = Computation(base.history());
    }
    std::vector<AtomSet> letters;
    for (int p = 0; p < out.comp.num_processes(); ++p) {
      letters.push_back(out.comp.event(p, 0).letter);
    }
    ReplayRuntime runtime;
    CaseStack stack(spec, &runtime);
    DecentralizedMonitor monitors(&prop, stack.net(), letters, mopts);
    MonitorHooks* hooks = stack.attach(spec, &monitors);
    runtime.run(out.comp, *hooks, spec.schedule_seed);
    stack.collect(out);
    const SystemVerdict v = monitors.result();
    out.monitor = v.verdicts;
    out.all_finished = v.all_finished;
  }
  out.oracle =
      oracle_evaluate(out.comp, automaton, spec.oracle_max_nodes).verdicts;
  return out;
}

/// The contract of DESIGN.md §3 plus liveness: returns an empty kind when
/// the case passes.
std::pair<std::string, std::string> check_contract(const CaseOutcome& out) {
  for (Verdict v : out.oracle) {
    if (!out.monitor.count(v)) {
      return {"incompleteness",
              std::string("oracle verdict ") + verdict_char(v) +
                  " missing; oracle={" + show_verdicts(out.oracle) +
                  "} monitor={" + show_verdicts(out.monitor) + "}"};
    }
  }
  for (Verdict v : out.monitor) {
    if (v != Verdict::kUnknown && !out.oracle.count(v)) {
      return {"unsound-verdict",
              std::string("definite verdict ") + verdict_char(v) +
                  " not on any lattice path; oracle={" +
                  show_verdicts(out.oracle) + "} monitor={" +
                  show_verdicts(out.monitor) + "}"};
    }
  }
  if (!out.all_finished) {
    return {"unfinished",
            "monitors did not reach quiescent final verdicts (stranded "
            "token or view)"};
  }
  return {"", ""};
}

FaultConfig random_fault_config(SplitMix64& rng, bool lose_dropped,
                                bool lossy) {
  auto u = [&rng] {
    return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  };
  FaultConfig fc;
  // Each fault class is active in most configs, with a uniformly random
  // rate; the occasional all-zero config keeps the clean path in the sweep.
  fc.delay_prob = u() < 0.75 ? 0.5 * u() : 0.0;
  fc.delay_mu = 0.1 + 1.5 * u();
  fc.delay_sigma = 0.5 * u();
  fc.reorder_prob = u() < 0.75 ? 0.5 * u() : 0.0;
  fc.dup_prob = u() < 0.6 ? 0.4 * u() : 0.0;
  fc.drop_prob = u() < 0.6 ? 0.3 * u() : 0.0;
  fc.max_drops = 1 + static_cast<int>(rng.next() % 4);
  fc.redelivery_delay = 0.05 + u();
  fc.lose_dropped = lose_dropped;
  if (lossy) {
    // Always a genuinely lossy channel (never zero): every lossy case must
    // actually exercise retransmission.
    fc.lose_prob = 0.05 + 0.25 * u();
  }
  fc.seed = rng.next();
  return fc;
}

/// v1 blobs have no channel/crash lines; v2 adds them (plus optional
/// `partial 1` for watchdog dumps without outcome or event log). The parser
/// accepts both.
void write_spec(std::ostream& os, const CaseSpec& spec) {
  const bool v2 = spec.reliable_channel || spec.crash.node >= 0;
  os << "decmon-fuzz-repro " << (v2 ? "v2" : "v1") << "\n";
  os << "property " << paper::name(spec.property) << "\n";
  os << "processes " << spec.num_processes << "\n";
  os << "mode " << to_string(spec.mode) << "\n";
  os << "internal_events " << spec.internal_events << "\n";
  os << "comm_mu " << spec.comm_mu << "\n";
  os << "trace_seed " << spec.trace_seed << "\n";
  os << "sim_seed " << spec.sim_seed << "\n";
  os << "schedule_seed " << spec.schedule_seed << "\n";
  os << "oracle_max_nodes " << spec.oracle_max_nodes << "\n";
  os << "fault " << spec.fault.to_string() << "\n";
  if (spec.reliable_channel) os << "channel " << spec.channel.to_string() << "\n";
  if (spec.crash.node >= 0) os << "crash " << spec.crash.to_string() << "\n";
  if (spec.gc) os << "gc 1\n";
}

std::string make_repro(const CaseSpec& spec, const CaseOutcome& out,
                       const std::string& kind) {
  std::ostringstream os;
  write_spec(os, spec);
  os << "kind " << kind << "\n";
  os << "oracle " << show_verdicts(out.oracle) << "\n";
  os << "monitor " << show_verdicts(out.monitor) << "\n";
  // The embedded log makes the blob self-contained: replay repros re-drive
  // it directly; sim repros regenerate the identical history from the seeds
  // above and keep the log as the human-readable record.
  os << "eventlog\n" << to_event_log(out.comp);
  return os.str();
}

/// Watchdog blob: everything needed to re-run the case, dumped before the
/// outcome exists. run_repro regenerates the computation from the seeds.
std::string make_partial_repro(const CaseSpec& spec) {
  std::ostringstream os;
  write_spec(os, spec);
  os << "partial 1\n";
  return os.str();
}

FaultConfig fault_from_string(const std::string& text) {
  FaultConfig fc;
  std::istringstream is(text);
  std::string key;
  while (is >> key) {
    if (key == "delay_prob") is >> fc.delay_prob;
    else if (key == "delay_mu") is >> fc.delay_mu;
    else if (key == "delay_sigma") is >> fc.delay_sigma;
    else if (key == "reorder_prob") is >> fc.reorder_prob;
    else if (key == "dup_prob") is >> fc.dup_prob;
    else if (key == "drop_prob") is >> fc.drop_prob;
    else if (key == "max_drops") is >> fc.max_drops;
    else if (key == "redelivery_delay") is >> fc.redelivery_delay;
    else if (key == "lose_prob") is >> fc.lose_prob;
    else if (key == "lose_dropped") {
      int b = 0;
      is >> b;
      fc.lose_dropped = b != 0;
    } else if (key == "seed") {
      is >> fc.seed;
    } else {
      throw std::runtime_error("fuzz repro: unknown fault field " + key);
    }
  }
  if (!is.eof() && is.fail()) {
    throw std::runtime_error("fuzz repro: malformed fault line");
  }
  return fc;
}

ReliableChannelConfig channel_from_string(const std::string& text) {
  ReliableChannelConfig cc;
  std::istringstream is(text);
  std::string key;
  while (is >> key) {
    if (key == "rto") is >> cc.rto;
    else if (key == "backoff") is >> cc.backoff;
    else if (key == "backoff_cap") is >> cc.backoff_cap;
    else if (key == "jitter") is >> cc.jitter;
    else if (key == "seed") is >> cc.seed;
    else throw std::runtime_error("fuzz repro: unknown channel field " + key);
  }
  if (!is.eof() && is.fail()) {
    throw std::runtime_error("fuzz repro: malformed channel line");
  }
  return cc;
}

CrashPlan crash_from_string(const std::string& text) {
  CrashPlan plan;
  std::istringstream is(text);
  std::string key;
  while (is >> key) {
    if (key == "node") is >> plan.node;
    else if (key == "crash_after") is >> plan.crash_after;
    else if (key == "down_deliveries") is >> plan.down_deliveries;
    else throw std::runtime_error("fuzz repro: unknown crash field " + key);
  }
  if (!is.eof() && is.fail()) {
    throw std::runtime_error("fuzz repro: malformed crash line");
  }
  return plan;
}

}  // namespace

std::string to_string(Mode mode) {
  return mode == Mode::kSim ? "sim" : "replay";
}

std::vector<Cell> default_cells() {
  return {{paper::Property::kA, 3},
          {paper::Property::kB, 2},
          {paper::Property::kE, 3}};
}

Report run_sweep(const Options& options, std::ostream* progress) {
  Report report;
  for (std::size_t ci = 0; ci < options.cells.size(); ++ci) {
    const Cell& cell = options.cells[ci];
    std::uint64_t cell_violations = 0;
    for (int k = 0; k < options.cases_per_cell; ++k) {
      SplitMix64 rng(derive_seed(
          options.seed, ci * 1000003ull + static_cast<std::uint64_t>(k)));
      CaseSpec spec;
      spec.property = cell.property;
      spec.num_processes = cell.num_processes;
      spec.mode = (k % 2 == 0) ? Mode::kReplay : Mode::kSim;
      spec.internal_events = options.internal_events;
      spec.comm_mu = options.comm_mu;
      spec.trace_seed = rng.next();
      spec.sim_seed = rng.next();
      spec.schedule_seed = rng.next();
      spec.oracle_max_nodes = options.oracle_max_nodes;
      spec.fault = random_fault_config(rng, options.lose_dropped,
                                       options.lossy);
      spec.reliable_channel = options.reliable_channel || options.crash;
      if (spec.reliable_channel) spec.channel.seed = rng.next();
      spec.gc = options.gc;
      if (options.crash) {
        // Every node broadcasts at least a termination token, so small
        // crash_after values always trip; down_deliveries controls how much
        // traffic the dead node swallows before the restart trigger.
        spec.crash.node =
            static_cast<int>(rng.next() % static_cast<std::uint64_t>(
                                              cell.num_processes));
        spec.crash.crash_after = rng.next() % 3;
        spec.crash.down_deliveries = 1 + rng.next() % 3;
      }
      if (options.on_case_start) options.on_case_start(make_partial_repro(spec));

      CaseOutcome out;
      try {
        out = execute_case(spec, nullptr);
      } catch (const std::length_error&) {
        ++report.skipped;  // oracle lattice past max_nodes: not evaluable
        continue;
      }
      ++report.cases;
      report.faults.messages += out.faults.messages;
      report.faults.delay_spikes += out.faults.delay_spikes;
      report.faults.reordered += out.faults.reordered;
      report.faults.duplicated += out.faults.duplicated;
      report.faults.dropped += out.faults.dropped;
      report.faults.lost += out.faults.lost;
      report.channel += out.channel;
      report.crash.crashes += out.crash.crashes;
      report.crash.restarts += out.crash.restarts;
      report.crash.checkpoints_taken += out.crash.checkpoints_taken;
      report.crash.checkpoint_bytes += out.crash.checkpoint_bytes;
      report.crash.dropped_while_down += out.crash.dropped_while_down;
      report.crash.journal_replayed += out.crash.journal_replayed;

      const auto [kind, detail] = check_contract(out);
      if (kind.empty()) continue;
      ++report.violation_count;
      ++cell_violations;
      Violation v;
      v.property = spec.property;
      v.num_processes = spec.num_processes;
      v.mode = spec.mode;
      v.kind = kind;
      v.detail = detail;
      if (report.violations.size() <
          static_cast<std::size_t>(options.max_repros)) {
        v.repro = make_repro(spec, out, kind);
      }
      report.violations.push_back(std::move(v));
      if (report.violations.size() >=
          static_cast<std::size_t>(options.max_repros)) {
        // Keep counting violations, stop accumulating Violation entries.
        report.violations.resize(
            static_cast<std::size_t>(options.max_repros));
      }
    }
    if (progress) {
      *progress << "cell " << paper::name(cell.property) << "/n="
                << cell.num_processes << ": " << options.cases_per_cell
                << " cases, " << cell_violations << " violations\n";
    }
  }
  return report;
}

ReproOutcome run_repro(const std::string& repro_text) {
  std::istringstream is(repro_text);
  std::string line;
  if (!std::getline(is, line) ||
      (line != "decmon-fuzz-repro v1" && line != "decmon-fuzz-repro v2")) {
    throw std::runtime_error("fuzz repro: bad header");
  }
  CaseSpec spec;
  std::string log_text;
  bool have_log = false;
  bool partial = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "eventlog") {
      std::ostringstream rest;
      rest << is.rdbuf();
      log_text = rest.str();
      have_log = true;
      break;
    } else if (key == "property") {
      std::string name;
      ls >> name;
      spec.property = property_from_name(name);
    } else if (key == "processes") {
      ls >> spec.num_processes;
    } else if (key == "mode") {
      std::string m;
      ls >> m;
      if (m == "sim") spec.mode = Mode::kSim;
      else if (m == "replay") spec.mode = Mode::kReplay;
      else throw std::runtime_error("fuzz repro: bad mode " + m);
    } else if (key == "internal_events") {
      ls >> spec.internal_events;
    } else if (key == "comm_mu") {
      ls >> spec.comm_mu;
    } else if (key == "trace_seed") {
      ls >> spec.trace_seed;
    } else if (key == "sim_seed") {
      ls >> spec.sim_seed;
    } else if (key == "schedule_seed") {
      ls >> spec.schedule_seed;
    } else if (key == "oracle_max_nodes") {
      ls >> spec.oracle_max_nodes;
    } else if (key == "fault") {
      std::string rest;
      std::getline(ls, rest);
      spec.fault = fault_from_string(rest);
    } else if (key == "channel") {
      std::string rest;
      std::getline(ls, rest);
      spec.channel = channel_from_string(rest);
      spec.reliable_channel = true;
    } else if (key == "crash") {
      std::string rest;
      std::getline(ls, rest);
      spec.crash = crash_from_string(rest);
    } else if (key == "gc") {
      int b = 0;
      ls >> b;
      spec.gc = b != 0;
    } else if (key == "partial") {
      int b = 0;
      ls >> b;
      partial = b != 0;
    } else if (key == "kind" || key == "oracle" || key == "monitor") {
      // Recorded outcome: informational; the repro re-derives it.
    } else {
      throw std::runtime_error("fuzz repro: unknown field " + key);
    }
  }
  // A partial (watchdog) blob carries no event log; both modes regenerate
  // the computation from the recorded seeds instead.
  if (!have_log && !partial) {
    throw std::runtime_error("fuzz repro: missing event log");
  }

  CaseOutcome out;
  if (spec.mode == Mode::kReplay && have_log) {
    AtomRegistry registry = paper::make_registry(spec.num_processes);
    Computation comp =
        relabel(computation_from_event_log(log_text), registry);
    out = execute_case(spec, &comp);
  } else {
    // Sim repros regenerate the run (and hence the identical history) from
    // the recorded seeds; the simulator is deterministic.
    out = execute_case(spec, nullptr);
  }

  ReproOutcome outcome;
  const auto [kind, detail] = check_contract(out);
  outcome.violation = !kind.empty();
  outcome.kind = kind;
  outcome.detail = detail;
  outcome.oracle = out.oracle;
  outcome.monitor = out.monitor;
  outcome.all_finished = out.all_finished;
  return outcome;
}

}  // namespace decmon::fuzz
