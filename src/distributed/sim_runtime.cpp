#include "decmon/distributed/sim_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace decmon {

SimRuntime::SimRuntime(SystemTrace trace, const AtomRegistry* registry,
                       SimConfig config)
    : registry_(registry),
      config_(config),
      app_latency_(config.app_latency_mu, config.app_latency_sigma,
                   derive_seed(config.seed, 1001), config.min_latency),
      mon_latency_(config.mon_latency_mu, config.mon_latency_sigma,
                   derive_seed(config.seed, 1002), config.min_latency) {
  const int n = trace.num_processes();
  procs_.reserve(static_cast<std::size_t>(n));
  history_.resize(static_cast<std::size_t>(n));
  remaining_receives_.resize(static_cast<std::size_t>(n));
  terminated_.assign(static_cast<std::size_t>(n), 0);
  app_last_delivery_.assign(static_cast<std::size_t>(n * n), 0.0);
  mon_last_delivery_.assign(static_cast<std::size_t>(n * n), 0.0);
  mon_pending_.resize(static_cast<std::size_t>(n * n));
  for (int p = 0; p < n; ++p) {
    remaining_receives_[static_cast<std::size_t>(p)] =
        trace.expected_receives(p);
    procs_.emplace_back(p, n, trace.procs[static_cast<std::size_t>(p)],
                        registry_);
  }
}

std::vector<LocalState> SimRuntime::initial_states() const {
  std::vector<LocalState> out;
  out.reserve(procs_.size());
  for (const ProgramProcess& p : procs_) out.push_back(p.state());
  return out;
}

void SimRuntime::schedule(double time, Task fn) {
  assert(time >= now_);
  queue_.push(Item{time, next_seq_++, std::move(fn)});
}

double SimRuntime::fifo_delivery_time(std::vector<double>& last, int channel,
                                      double candidate) {
  double& prev = last[static_cast<std::size_t>(channel)];
  const double at = std::max(candidate, prev + 1e-9);
  prev = at;
  return at;
}

void SimRuntime::run() {
  const int n = num_processes();
  // Record initial pseudo-events (monitors receive the initial global state
  // at construction, not through the event stream).
  for (int p = 0; p < n; ++p) {
    history_[static_cast<std::size_t>(p)].push_back(
        procs_[static_cast<std::size_t>(p)].initial_event());
  }
  for (int p = 0; p < n; ++p) {
    schedule_next_action(p);
    maybe_terminate(p);  // empty traces terminate immediately
  }
  while (!queue_.empty()) {
    // Items are move-only; top() is about to be popped, so moving out of it
    // is safe (pop only destroys or moves-from the extracted slot).
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    assert(item.time >= now_);
    now_ = item.time;
    item.fn();
  }
}

void SimRuntime::schedule_next_action(int proc) {
  ProgramProcess& p = procs_[static_cast<std::size_t>(proc)];
  if (!p.has_next_action()) return;
  schedule(now_ + p.next_action_wait(), [this, proc] { execute_action(proc); });
}

void SimRuntime::execute_action(int proc) {
  ProgramProcess& p = procs_[static_cast<std::size_t>(proc)];
  ProgramProcess::ActionResult result = p.execute_next_action(now_);
  record_and_notify(result.event);
  if (result.is_comm) {
    // Broadcast: one copy per peer, independent latencies, FIFO channels.
    for (int to = 0; to < num_processes(); ++to) {
      if (to == proc) continue;
      AppMessage msg = result.message;  // per-peer copy (inline clock: memcpy)
      msg.to = to;
      const double at = fifo_delivery_time(
          app_last_delivery_, proc * num_processes() + to,
          now_ + app_latency_.sample());
      ++app_messages_;
      schedule(at, [this, m = std::move(msg)] { deliver_app(m); });
    }
  }
  schedule_next_action(proc);
  maybe_terminate(proc);
}

void SimRuntime::deliver_app(const AppMessage& msg) {
  ProgramProcess& p = procs_[static_cast<std::size_t>(msg.to)];
  const Event e = p.receive(msg, now_);
  --remaining_receives_[static_cast<std::size_t>(msg.to)];
  record_and_notify(e);
  maybe_terminate(msg.to);
}

void SimRuntime::record_and_notify(const Event& e) {
  ++program_events_;
  program_end_ = std::max(program_end_, now_);
  monitor_end_ = std::max(monitor_end_, now_);
  auto& hist = history_[static_cast<std::size_t>(e.process)];
  assert(e.sn == hist.size());
  hist.push_back(e);
  if (hooks_) hooks_->on_local_event(e.process, e, now_);
}

void SimRuntime::maybe_terminate(int proc) {
  if (terminated_[static_cast<std::size_t>(proc)]) return;
  const ProgramProcess& p = procs_[static_cast<std::size_t>(proc)];
  if (p.has_next_action()) return;
  if (remaining_receives_[static_cast<std::size_t>(proc)] > 0) return;
  terminated_[static_cast<std::size_t>(proc)] = 1;
  program_end_ = std::max(program_end_, now_);
  if (hooks_) hooks_->on_local_termination(proc, now_);
}

void SimRuntime::send(MonitorMessage msg) {
  send_perturbed(std::move(msg), DeliveryPerturbation{});
}

void SimRuntime::send_perturbed(MonitorMessage msg,
                                const DeliveryPerturbation& perturbation) {
  if (msg.to < 0 || msg.to >= num_processes()) {
    throw std::out_of_range("SimRuntime::send: bad destination");
  }
  const bool self = msg.from == msg.to;
  // Unperturbed cross-node frames ride the convoy engine: per-unit latency
  // draws with in-flight re-batching. Perturbed sends (fault injection) and
  // channel envelopes keep the whole-message path below -- a frame inside
  // an envelope is delayed/reordered/dropped as one unit, which is exactly
  // the PR 3/4 fault semantics.
  if (!self && msg.payload && msg.payload->tag == PayloadFrame::kTag &&
      perturbation.extra_delay == 0.0 && !perturbation.bypass_fifo) {
    send_frame(std::move(msg));
    return;
  }
  if (!self) ++monitor_messages_;  // same-node handoff is not network traffic
  double at = now_;
  if (!self) {
    at += mon_latency_.sample() + perturbation.extra_delay;
    // Perturbed (bypass_fifo) messages neither wait behind nor hold back
    // the channel: they are exactly the reordering/retransmission faults.
    if (!perturbation.bypass_fifo) {
      at = fifo_delivery_time(mon_last_delivery_,
                              msg.from * num_processes() + msg.to, at);
    }
  } else if (perturbation.extra_delay > 0.0) {
    // Delayed self-delivery: how the reliable channel schedules its
    // retransmit timers (no latency sample -- nothing crosses the network).
    at += perturbation.extra_delay;
  }
  // The message moves through the queue to the receiver: the payload is
  // never duplicated, and self-delivery (from == to) is the same zero-copy
  // handoff scheduled at the current time.
  schedule(at, [this, m = std::move(msg)]() mutable {
    monitor_end_ = std::max(monitor_end_, now_);
    if (hooks_) hooks_->on_monitor_message(std::move(m), now_);
  });
}

void SimRuntime::send_frame(MonitorMessage msg) {
  const int n = num_processes();
  const int ch = msg.from * n + msg.to;
  std::deque<PendingFrame>& pending =
      mon_pending_[static_cast<std::size_t>(ch)];
  double& prev = mon_last_delivery_[static_cast<std::size_t>(ch)];
  const bool transit = config_.coalesce == CoalesceMode::kTransit;

  std::unique_ptr<PayloadFrame> incoming(
      static_cast<PayloadFrame*>(msg.payload.release()));
  for (std::unique_ptr<NetPayload>& unit : incoming->units) {
    if (!unit) continue;
    // One latency draw per unit, in unit order: the single seeded stream
    // advances exactly as the unbatched simulation would, so everything
    // else in the schedule (app messages, other channels) is untouched.
    const double unclamped = now_ + mon_latency_.sample();
    const double at = std::max(unclamped, prev + 1e-9);
    // kExact joins the in-flight tail only when the FIFO clamp would have
    // delivered this unit epsilon-behind the previous one anyway; kTransit
    // joins whenever the tail has not been delivered yet.
    const bool join =
        !pending.empty() && (transit || unclamped <= prev + 1e-9);
    prev = at;
    if (join) {
      auto* tail =
          static_cast<PayloadFrame*>(pending.back().msg.payload.get());
      // Transfer the accounting stamp (the flush-time per-unit size; the
      // re-batched frame's shared header is approximated away).
      tail->wire_size += unit->wire_size;
      tail->units.push_back(std::move(unit));
      continue;
    }
    // Open a new in-flight frame headed by this unit.
    std::unique_ptr<PayloadFrame> head;
    if (!frame_shells_.empty()) {
      head = std::move(frame_shells_.back());
      frame_shells_.pop_back();
    } else {
      head = std::make_unique<PayloadFrame>();
    }
    head->wire_size = unit->wire_size;
    head->units.push_back(std::move(unit));
    ++monitor_messages_;  // one network message per frame that hits the wire
    pending.push_back(
        PendingFrame{MonitorMessage{msg.from, msg.to, std::move(head)}, at});
    schedule(at, [this, ch] { deliver_frame(ch); });
  }
  // The drained shell feeds the split path above (bounded like the monitor
  // pools).
  if (frame_shells_.size() < 32) {
    incoming->units.clear();
    incoming->wire_size = 0;
    frame_shells_.push_back(std::move(incoming));
  }
}

void SimRuntime::deliver_frame(int ch) {
  std::deque<PendingFrame>& pending =
      mon_pending_[static_cast<std::size_t>(ch)];
  assert(!pending.empty());
  PendingFrame pf = std::move(pending.front());
  pending.pop_front();
  monitor_end_ = std::max(monitor_end_, now_);
  if (hooks_) hooks_->on_monitor_message(std::move(pf.msg), now_);
}

}  // namespace decmon
