#include "decmon/distributed/sim_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace decmon {

SimRuntime::SimRuntime(SystemTrace trace, const AtomRegistry* registry,
                       SimConfig config)
    : registry_(registry),
      config_(config),
      app_latency_(config.app_latency_mu, config.app_latency_sigma,
                   derive_seed(config.seed, 1001), config.min_latency),
      mon_latency_(config.mon_latency_mu, config.mon_latency_sigma,
                   derive_seed(config.seed, 1002), config.min_latency) {
  const int n = trace.num_processes();
  procs_.reserve(static_cast<std::size_t>(n));
  history_.resize(static_cast<std::size_t>(n));
  remaining_receives_.resize(static_cast<std::size_t>(n));
  terminated_.assign(static_cast<std::size_t>(n), 0);
  app_last_delivery_.assign(static_cast<std::size_t>(n * n), 0.0);
  mon_last_delivery_.assign(static_cast<std::size_t>(n * n), 0.0);
  for (int p = 0; p < n; ++p) {
    remaining_receives_[static_cast<std::size_t>(p)] =
        trace.expected_receives(p);
    procs_.emplace_back(p, n, trace.procs[static_cast<std::size_t>(p)],
                        registry_);
  }
}

std::vector<LocalState> SimRuntime::initial_states() const {
  std::vector<LocalState> out;
  out.reserve(procs_.size());
  for (const ProgramProcess& p : procs_) out.push_back(p.state());
  return out;
}

void SimRuntime::schedule(double time, Task fn) {
  assert(time >= now_);
  queue_.push(Item{time, next_seq_++, std::move(fn)});
}

double SimRuntime::fifo_delivery_time(std::vector<double>& last, int channel,
                                      double candidate) {
  double& prev = last[static_cast<std::size_t>(channel)];
  const double at = std::max(candidate, prev + 1e-9);
  prev = at;
  return at;
}

void SimRuntime::run() {
  const int n = num_processes();
  // Record initial pseudo-events (monitors receive the initial global state
  // at construction, not through the event stream).
  for (int p = 0; p < n; ++p) {
    history_[static_cast<std::size_t>(p)].push_back(
        procs_[static_cast<std::size_t>(p)].initial_event());
  }
  for (int p = 0; p < n; ++p) {
    schedule_next_action(p);
    maybe_terminate(p);  // empty traces terminate immediately
  }
  while (!queue_.empty()) {
    // Items are move-only; top() is about to be popped, so moving out of it
    // is safe (pop only destroys or moves-from the extracted slot).
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    assert(item.time >= now_);
    now_ = item.time;
    item.fn();
  }
}

void SimRuntime::schedule_next_action(int proc) {
  ProgramProcess& p = procs_[static_cast<std::size_t>(proc)];
  if (!p.has_next_action()) return;
  schedule(now_ + p.next_action_wait(), [this, proc] { execute_action(proc); });
}

void SimRuntime::execute_action(int proc) {
  ProgramProcess& p = procs_[static_cast<std::size_t>(proc)];
  ProgramProcess::ActionResult result = p.execute_next_action(now_);
  record_and_notify(result.event);
  if (result.is_comm) {
    // Broadcast: one copy per peer, independent latencies, FIFO channels.
    for (int to = 0; to < num_processes(); ++to) {
      if (to == proc) continue;
      AppMessage msg = result.message;  // per-peer copy (inline clock: memcpy)
      msg.to = to;
      const double at = fifo_delivery_time(
          app_last_delivery_, proc * num_processes() + to,
          now_ + app_latency_.sample());
      ++app_messages_;
      schedule(at, [this, m = std::move(msg)] { deliver_app(m); });
    }
  }
  schedule_next_action(proc);
  maybe_terminate(proc);
}

void SimRuntime::deliver_app(const AppMessage& msg) {
  ProgramProcess& p = procs_[static_cast<std::size_t>(msg.to)];
  const Event e = p.receive(msg, now_);
  --remaining_receives_[static_cast<std::size_t>(msg.to)];
  record_and_notify(e);
  maybe_terminate(msg.to);
}

void SimRuntime::record_and_notify(const Event& e) {
  ++program_events_;
  program_end_ = std::max(program_end_, now_);
  monitor_end_ = std::max(monitor_end_, now_);
  auto& hist = history_[static_cast<std::size_t>(e.process)];
  assert(e.sn == hist.size());
  hist.push_back(e);
  if (hooks_) hooks_->on_local_event(e.process, e, now_);
}

void SimRuntime::maybe_terminate(int proc) {
  if (terminated_[static_cast<std::size_t>(proc)]) return;
  const ProgramProcess& p = procs_[static_cast<std::size_t>(proc)];
  if (p.has_next_action()) return;
  if (remaining_receives_[static_cast<std::size_t>(proc)] > 0) return;
  terminated_[static_cast<std::size_t>(proc)] = 1;
  program_end_ = std::max(program_end_, now_);
  if (hooks_) hooks_->on_local_termination(proc, now_);
}

void SimRuntime::send(MonitorMessage msg) {
  send_perturbed(std::move(msg), DeliveryPerturbation{});
}

void SimRuntime::send_perturbed(MonitorMessage msg,
                                const DeliveryPerturbation& perturbation) {
  if (msg.to < 0 || msg.to >= num_processes()) {
    throw std::out_of_range("SimRuntime::send: bad destination");
  }
  const bool self = msg.from == msg.to;
  if (!self) ++monitor_messages_;  // same-node handoff is not network traffic
  double at = now_;
  if (!self) {
    at += mon_latency_.sample() + perturbation.extra_delay;
    // Perturbed (bypass_fifo) messages neither wait behind nor hold back
    // the channel: they are exactly the reordering/retransmission faults.
    if (!perturbation.bypass_fifo) {
      at = fifo_delivery_time(mon_last_delivery_,
                              msg.from * num_processes() + msg.to, at);
    }
  } else if (perturbation.extra_delay > 0.0) {
    // Delayed self-delivery: how the reliable channel schedules its
    // retransmit timers (no latency sample -- nothing crosses the network).
    at += perturbation.extra_delay;
  }
  // The message moves through the queue to the receiver: the payload is
  // never duplicated, and self-delivery (from == to) is the same zero-copy
  // handoff scheduled at the current time.
  schedule(at, [this, m = std::move(msg)]() mutable {
    monitor_end_ = std::max(monitor_end_, now_);
    if (hooks_) hooks_->on_monitor_message(std::move(m), now_);
  });
}

}  // namespace decmon
