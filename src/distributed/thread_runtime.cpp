#include "decmon/distributed/thread_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace decmon {

thread_local int ThreadRuntime::current_node_ = -1;

namespace {

std::chrono::nanoseconds to_wall(double trace_seconds, double scale) {
  const double wall = std::max(0.0, trace_seconds * scale);
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(wall * 1e9));
}

}  // namespace

ThreadRuntime::ThreadRuntime(SystemTrace trace, const AtomRegistry* registry,
                             ThreadConfig config)
    : registry_(registry), config_(config) {
  const int n = trace.num_processes();
  history_.resize(static_cast<std::size_t>(n));
  nodes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>();
    node->process = std::make_unique<ProgramProcess>(
        i, n, trace.procs[static_cast<std::size_t>(i)], registry_);
    node->expected_receives = trace.expected_receives(i);
    node->last_delivery.assign(static_cast<std::size_t>(n),
                               Clock::time_point{});
    node->latency = std::make_unique<NormalWait>(
        config_.latency_mu, config_.latency_sigma,
        derive_seed(config_.seed, 7000 + static_cast<std::uint64_t>(i)),
        /*min=*/0.0001);
    nodes_.push_back(std::move(node));
  }
}

ThreadRuntime::~ThreadRuntime() {
  stop_.store(true);
  for (auto& node : nodes_) node->cv.notify_all();
  // jthread joins on destruction.
}

std::vector<LocalState> ThreadRuntime::initial_states() const {
  std::vector<LocalState> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node->process->state());
  return out;
}

double ThreadRuntime::now() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

ThreadRuntime::Clock::time_point ThreadRuntime::fifo_time(
    int from, int to, Clock::time_point candidate) {
  // Called from the sender's thread only; each sender serializes its own
  // sends, so the clamp table needs no lock.
  auto& last = nodes_[static_cast<std::size_t>(from)]
                   ->last_delivery[static_cast<std::size_t>(to)];
  const auto at = std::max(candidate, last + std::chrono::nanoseconds(1));
  last = at;
  return at;
}

void ThreadRuntime::deliver(int to, Clock::time_point at, Payload payload) {
  Node& node = *nodes_[static_cast<std::size_t>(to)];
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::scoped_lock lock(node.mutex);
    node.inbox.push(
        Timed{at, seq_.fetch_add(1, std::memory_order_relaxed),
              std::move(payload)});
  }
  node.cv.notify_all();
}

void ThreadRuntime::send(MonitorMessage msg) {
  const int from = current_node_ >= 0 ? current_node_ : msg.from;
  Clock::time_point at = Clock::now();
  if (msg.from != msg.to) {
    monitor_messages_.fetch_add(1, std::memory_order_relaxed);
    at += to_wall(nodes_[static_cast<std::size_t>(from)]->latency->sample(),
                  config_.time_scale);
    at = fifo_time(msg.from, msg.to, at);
  }
  deliver(msg.to, at, std::move(msg));
}

void ThreadRuntime::run() {
  start_ = Clock::now();
  stop_.store(false);
  active_programs_.store(num_processes());
  threads_.clear();
  threads_.reserve(static_cast<std::size_t>(num_processes()));
  for (int i = 0; i < num_processes(); ++i) {
    history_[static_cast<std::size_t>(i)].clear();
    history_[static_cast<std::size_t>(i)].push_back(
        nodes_[static_cast<std::size_t>(i)]->process->initial_event());
    threads_.emplace_back([this, i] { node_main(i); });
  }
  // Quiescence: every program finished its trace and announced termination,
  // and no message is queued or being processed. Double-check with a short
  // settle window to close the send-during-processing race.
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (active_programs_.load(std::memory_order_acquire) != 0) continue;
    if (in_flight_.load(std::memory_order_acquire) != 0) continue;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    if (active_programs_.load(std::memory_order_acquire) == 0 &&
        in_flight_.load(std::memory_order_acquire) == 0) {
      break;
    }
  }
  stop_.store(true);
  for (auto& node : nodes_) node->cv.notify_all();
  threads_.clear();  // join
}

void ThreadRuntime::node_main(int index) {
  current_node_ = index;
  Node& node = *nodes_[static_cast<std::size_t>(index)];
  ProgramProcess& proc = *node.process;
  auto& hist = history_[static_cast<std::size_t>(index)];

  int receives_left = node.expected_receives;
  bool announced_termination = false;
  Clock::time_point next_action =
      proc.has_next_action()
          ? start_ + to_wall(proc.next_action_wait(), config_.time_scale)
          : Clock::time_point::max();

  auto record_event = [&](const Event& e) {
    program_events_.fetch_add(1, std::memory_order_relaxed);
    hist.push_back(e);
    if (hooks_) hooks_->on_local_event(index, e, now());
  };

  while (!stop_.load(std::memory_order_acquire)) {
    // Pull one ready message, or wait for the next action/message.
    std::optional<Payload> ready;
    {
      std::unique_lock lock(node.mutex);
      const auto next_msg_at = [&]() {
        return node.inbox.empty() ? Clock::time_point::max()
                                  : node.inbox.top().at;
      };
      auto wake = std::min(next_action, next_msg_at());
      // Bounded wait so stop_ and newly queued messages are noticed.
      const auto cap = Clock::now() + std::chrono::milliseconds(5);
      node.cv.wait_until(lock, std::min(wake, cap), [&] {
        return stop_.load(std::memory_order_acquire) ||
               (!node.inbox.empty() && node.inbox.top().at <= Clock::now());
      });
      if (stop_.load(std::memory_order_acquire)) break;
      if (!node.inbox.empty() && node.inbox.top().at <= Clock::now()) {
        // Payloads are move-only (MonitorMessage owns its payload); move out
        // of the top slot, which pop() is about to discard anyway.
        ready = std::move(const_cast<Timed&>(node.inbox.top()).payload);
        node.inbox.pop();
      }
    }
    if (ready) {
      if (auto* app = std::get_if<AppMessage>(&*ready)) {
        const Event e = proc.receive(*app, now());
        --receives_left;
        record_event(e);
      } else {
        if (hooks_) {
          hooks_->on_monitor_message(std::move(std::get<MonitorMessage>(*ready)),
                                     now());
        }
      }
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    } else if (proc.has_next_action() && Clock::now() >= next_action) {
      ProgramProcess::ActionResult result = proc.execute_next_action(now());
      record_event(result.event);
      if (result.is_comm) {
        for (int to = 0; to < num_processes(); ++to) {
          if (to == index) continue;
          AppMessage msg = result.message;
          msg.to = to;
          app_messages_.fetch_add(1, std::memory_order_relaxed);
          auto at = Clock::now() +
                    to_wall(node.latency->sample(), config_.time_scale);
          deliver(to, fifo_time(index, to, at), std::move(msg));
        }
      }
      next_action =
          proc.has_next_action()
              ? Clock::now() + to_wall(proc.next_action_wait(),
                                       config_.time_scale)
              : Clock::time_point::max();
    }
    if (!announced_termination && !proc.has_next_action() &&
        receives_left == 0) {
      announced_termination = true;
      if (hooks_) hooks_->on_local_termination(index, now());
      active_programs_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

}  // namespace decmon
