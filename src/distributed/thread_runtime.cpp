#include "decmon/distributed/thread_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <optional>
#include <stdexcept>

namespace decmon {

namespace {

/// Saturation bound for trace-time -> wall-time conversion: far beyond any
/// real run (~73 years) yet small enough that adding it to a steady_clock
/// reading can never overflow the time_point representation.
constexpr std::chrono::nanoseconds kMaxWall{
    std::numeric_limits<std::int64_t>::max() / 4};

std::chrono::nanoseconds to_wall(double trace_seconds, double scale) {
  const double wall_ns = std::max(0.0, trace_seconds * scale) * 1e9;
  // Saturate instead of casting out of range (the cast would be UB); the
  // negated comparison also routes NaN to the saturated value.
  if (!(wall_ns < static_cast<double>(kMaxWall.count()))) return kMaxWall;
  return std::chrono::nanoseconds(static_cast<std::int64_t>(wall_ns));
}

/// tp + d without overflow: saturates to time_point::max().
std::chrono::steady_clock::time_point advance_saturated(
    std::chrono::steady_clock::time_point tp, std::chrono::nanoseconds d) {
  using TP = std::chrono::steady_clock::time_point;
  if (tp >= TP::max() - d) return TP::max();
  return tp + std::chrono::duration_cast<TP::duration>(d);
}

}  // namespace

ThreadRuntime::ThreadRuntime(SystemTrace trace, const AtomRegistry* registry,
                             ThreadConfig config)
    : registry_(registry), config_(config), start_(Clock::now()) {
  const int n = trace.num_processes();
  history_.resize(static_cast<std::size_t>(n));
  nodes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>();
    node->process = std::make_unique<ProgramProcess>(
        i, n, trace.procs[static_cast<std::size_t>(i)], registry_);
    node->expected_receives = trace.expected_receives(i);
    node->last_delivery.assign(static_cast<std::size_t>(n),
                               Clock::time_point{});
    node->latency = std::make_unique<NormalWait>(
        config_.latency_mu, config_.latency_sigma,
        derive_seed(config_.seed, 7000 + static_cast<std::uint64_t>(i)),
        /*min=*/0.0001);
    nodes_.push_back(std::move(node));
  }
}

ThreadRuntime::~ThreadRuntime() {
  stop_.store(true);
  for (auto& node : nodes_) {
    // Lock-then-notify so a node between its stop_ check and cv wait cannot
    // miss the wakeup.
    std::scoped_lock lock(node->mutex);
    node->cv.notify_all();
  }
  // jthread joins on destruction.
}

std::vector<LocalState> ThreadRuntime::initial_states() const {
  std::vector<LocalState> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node->process->state());
  return out;
}

double ThreadRuntime::now() const {
  return std::chrono::duration<double>(
             Clock::now() - start_.load(std::memory_order_relaxed))
      .count();
}

ThreadRuntime::Clock::time_point ThreadRuntime::fifo_time(
    int from, int to, Clock::time_point candidate) {
  auto& last = nodes_[static_cast<std::size_t>(from)]
                   ->last_delivery[static_cast<std::size_t>(to)];
  const auto at = std::max(candidate, last + std::chrono::nanoseconds(1));
  last = at;
  return at;
}

void ThreadRuntime::deliver(int to, Clock::time_point at, Payload payload) {
  Node& node = *nodes_[static_cast<std::size_t>(to)];
  // Count the message before it becomes visible: the work unit exists from
  // this point until the receiver finished processing it (finish_one).
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::scoped_lock lock(node.mutex);
    node.inbox.push(
        Timed{at, seq_.fetch_add(1, std::memory_order_relaxed),
              std::move(payload)});
    node.cv.notify_all();
  }
}

void ThreadRuntime::finish_one() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Lock-then-notify: run() checks the counter under the mutex, so the
    // notification cannot slip between its check and its wait.
    std::scoped_lock lock(quiesce_mutex_);
    quiesce_cv_.notify_all();
  }
}

void ThreadRuntime::send(MonitorMessage msg) {
  send_perturbed(std::move(msg), DeliveryPerturbation{});
}

void ThreadRuntime::send_perturbed(MonitorMessage msg,
                                   const DeliveryPerturbation& perturbation) {
  if (msg.from < 0 || msg.from >= num_processes() || msg.to < 0 ||
      msg.to >= num_processes()) {
    throw std::out_of_range("ThreadRuntime::send: bad endpoint");
  }
  Clock::time_point at = Clock::now();
  if (msg.from != msg.to) {
    monitor_messages_.fetch_add(1, std::memory_order_relaxed);
    // Sender identity is msg.from, full stop: the latency stream and the
    // FIFO clamp key on the same node, and the per-node send mutex makes
    // this safe from any thread (monitor hooks run on the sender's thread,
    // but tests and tools may inject from outside).
    Node& sender = *nodes_[static_cast<std::size_t>(msg.from)];
    std::scoped_lock lock(sender.send_mutex);
    at = advance_saturated(
        at, to_wall(sender.latency->sample() + perturbation.extra_delay,
                    config_.time_scale));
    if (!perturbation.bypass_fifo) at = fifo_time(msg.from, msg.to, at);
  } else if (perturbation.extra_delay > 0.0) {
    // Delayed self-delivery: the reliable channel's retransmit timers (no
    // latency sample -- nothing crosses the network).
    at = advance_saturated(
        at, to_wall(perturbation.extra_delay, config_.time_scale));
  }
  deliver(msg.to, at, std::move(msg));
}

void ThreadRuntime::run() {
  start_.store(Clock::now(), std::memory_order_relaxed);
  stop_.store(false);
  // One work unit per program; externally injected pre-run messages are
  // already counted by deliver().
  outstanding_.fetch_add(num_processes(), std::memory_order_acq_rel);
  threads_.clear();
  threads_.reserve(static_cast<std::size_t>(num_processes()));
  for (int i = 0; i < num_processes(); ++i) {
    history_[static_cast<std::size_t>(i)].clear();
    history_[static_cast<std::size_t>(i)].push_back(
        nodes_[static_cast<std::size_t>(i)]->process->initial_event());
    threads_.emplace_back([this, i] { node_main(i); });
  }
  {
    std::unique_lock lock(quiesce_mutex_);
    quiesce_cv_.wait(lock, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  stop_.store(true);
  for (auto& node : nodes_) {
    std::scoped_lock lock(node->mutex);
    node->cv.notify_all();
  }
  threads_.clear();  // join
}

void ThreadRuntime::node_main(int index) {
  Node& node = *nodes_[static_cast<std::size_t>(index)];
  ProgramProcess& proc = *node.process;
  auto& hist = history_[static_cast<std::size_t>(index)];
  const Clock::time_point run_start = start_.load(std::memory_order_relaxed);

  int receives_left = node.expected_receives;
  bool announced_termination = false;
  // Action times are derived from the *scheduled* time of the previous
  // action, not Clock::now() after it ran, so processing latency never
  // compounds into trace-time drift.
  Clock::time_point next_action =
      proc.has_next_action()
          ? advance_saturated(
                run_start, to_wall(proc.next_action_wait(), config_.time_scale))
          : Clock::time_point::max();

  auto record_event = [&](const Event& e) {
    program_events_.fetch_add(1, std::memory_order_relaxed);
    hist.push_back(e);
    if (hooks_) hooks_->on_local_event(index, e, now());
  };

  while (true) {
    // Wait until a message ripens, the next action is due, or stop. The
    // wake deadline is recomputed after every wakeup, so a newly queued
    // message with an earlier delivery time is never missed.
    std::optional<Payload> ready;
    bool action_due = false;
    {
      std::unique_lock lock(node.mutex);
      for (;;) {
        if (stop_.load(std::memory_order_acquire)) return;
        const auto wall = Clock::now();
        if (!node.inbox.empty() && node.inbox.top().at <= wall) {
          // Payloads are move-only (MonitorMessage owns its payload); move
          // out of the top slot, which pop() is about to discard anyway.
          ready = std::move(const_cast<Timed&>(node.inbox.top()).payload);
          node.inbox.pop();
          break;
        }
        if (proc.has_next_action() && wall >= next_action) {
          action_due = true;
          break;
        }
        const auto next_msg_at = node.inbox.empty()
                                     ? Clock::time_point::max()
                                     : node.inbox.top().at;
        const auto wake = std::min(next_action, next_msg_at);
        if (wake == Clock::time_point::max()) {
          node.cv.wait(lock);
        } else {
          node.cv.wait_until(lock, wake);
        }
      }
    }
    if (ready) {
      if (auto* app = std::get_if<AppMessage>(&*ready)) {
        const Event e = proc.receive(*app, now());
        --receives_left;
        record_event(e);
      } else {
        monitor_deliveries_.fetch_add(1, std::memory_order_relaxed);
        if (hooks_) {
          hooks_->on_monitor_message(std::move(std::get<MonitorMessage>(*ready)),
                                     now());
        }
      }
      // Release the message's work unit only after processing it -- any
      // sends the hook performed were counted first, so the outstanding
      // counter can never dip to zero mid-cascade.
      finish_one();
    } else if (action_due) {
      ProgramProcess::ActionResult result = proc.execute_next_action(now());
      record_event(result.event);
      if (result.is_comm) {
        std::scoped_lock lock(node.send_mutex);
        for (int to = 0; to < num_processes(); ++to) {
          if (to == index) continue;
          AppMessage msg = result.message;
          msg.to = to;
          app_messages_.fetch_add(1, std::memory_order_relaxed);
          auto at = advance_saturated(
              Clock::now(),
              to_wall(node.latency->sample(), config_.time_scale));
          deliver(to, fifo_time(index, to, at), std::move(msg));
        }
      }
      next_action =
          proc.has_next_action()
              ? advance_saturated(
                    next_action,
                    to_wall(proc.next_action_wait(), config_.time_scale))
              : Clock::time_point::max();
    }
    if (!announced_termination && !proc.has_next_action() &&
        receives_left == 0) {
      announced_termination = true;
      if (hooks_) hooks_->on_local_termination(index, now());
      // The program's work unit ends after its termination hook: sends made
      // by the hook are counted before this release.
      finish_one();
    }
  }
}

}  // namespace decmon
