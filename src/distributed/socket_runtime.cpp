#include "decmon/distributed/socket_runtime.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "decmon/monitor/wire.hpp"

namespace decmon {

namespace {

// Record type bytes (after the u32 length prefix).
constexpr std::uint8_t kAppRecord = 0x01;
constexpr std::uint8_t kMonRecord = 0x02;
constexpr std::uint8_t kCtlRecord = 0x03;
constexpr std::size_t kRecordHeader = 5;  // u32 length + type byte

// Control record kinds.
constexpr std::uint8_t kCtlHello = 1;
/// Full on-wire size of a HELLO record: header + kind + sender u32 +
/// app-received u64 + monitor-received u64.
constexpr std::size_t kHelloRecordBytes = kRecordHeader + 1 + 4 + 8 + 8;

// epoll user data is (kind << 32 | value): value is a peer index for data
// sockets and in-flight connects, an fd for unidentified accepts, unused
// for the eventfd and the listener.
constexpr std::uint64_t kKindPeer = 0;
constexpr std::uint64_t kKindEvent = 1;
constexpr std::uint64_t kKindListener = 2;
constexpr std::uint64_t kKindPending = 3;
constexpr std::uint64_t kKindConnect = 4;

std::uint64_t make_tag(std::uint64_t kind, std::uint64_t value) {
  return (kind << 32) | value;
}

/// Saturation bound for trace-time -> wall-time conversion (same rationale
/// as ThreadRuntime's).
constexpr std::chrono::nanoseconds kMaxWall{
    std::numeric_limits<std::int64_t>::max() / 4};

std::chrono::nanoseconds to_wall(double trace_seconds, double scale) {
  const double wall_ns = std::max(0.0, trace_seconds * scale) * 1e9;
  if (!(wall_ns < static_cast<double>(kMaxWall.count()))) return kMaxWall;
  return std::chrono::nanoseconds(static_cast<std::int64_t>(wall_ns));
}

std::chrono::steady_clock::time_point advance_saturated(
    std::chrono::steady_clock::time_point tp, std::chrono::nanoseconds d) {
  using TP = std::chrono::steady_clock::time_point;
  if (tp >= TP::max() - d) return TP::max();
  return tp + std::chrono::duration_cast<TP::duration>(d);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

void apply_buffer_sizes(int fd, const SocketConfig& config) {
  if (config.sndbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config.sndbuf,
                 sizeof config.sndbuf);
  }
  if (config.rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &config.rcvbuf,
                 sizeof config.rcvbuf);
  }
  // Loopback negotiates an MSS near its 64 KiB MTU. When the configured
  // buffers are of the same order, the advertised receive window can sink
  // below one segment whenever the reader lags; the sender's silly-window
  // avoidance then refuses to transmit at all and the stream degenerates
  // into zero-window persist probes -- hundreds of milliseconds apart and
  // exponentially backed off -- while both ends sit idle (observed as
  // multi-second whole-run stalls: `ss` shows notsent > 0, snd_wnd < mss,
  // timer:(persist,...) and rwnd_limited ~90%). Clamp the MSS so the
  // window always holds several segments, as it would on a real network
  // path where the MTU is tiny relative to any sane buffer size.
  int cap = config.rcvbuf;
  if (config.sndbuf > 0 && (cap <= 0 || config.sndbuf < cap)) {
    cap = config.sndbuf;
  }
  if (cap > 0) {
    const int mss = std::clamp(cap / 4, 1024, 65483);
    ::setsockopt(fd, IPPROTO_TCP, TCP_MAXSEG, &mss, sizeof mss);
  }
}

void apply_stream_options(int fd) {
  // TCP_NODELAY keeps small monitor records from being Nagle-delayed
  // behind unacked data.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  // Small-buffer meshes can still drop segments at the receive queue
  // when skb overhead overruns SO_RCVBUF (TCPRcvQDrop); the retransmit
  // that repairs a drop is then the channel's latency floor. Monitor
  // streams are exactly the "thin stream" the linear-timeout option
  // targets -- few packets in flight, latency-critical -- so keep the
  // retransmit clock flat instead of exponential, and on kernels that
  // support it clamp the RTO ceiling too. Both are best-effort.
  ::setsockopt(fd, IPPROTO_TCP, TCP_THIN_LINEAR_TIMEOUTS, &one, sizeof one);
#ifdef TCP_RTO_MAX_MS
  const unsigned rto_max_ms = 1000;  // kernel-enforced floor
  ::setsockopt(fd, IPPROTO_TCP, TCP_RTO_MAX_MS, &rto_max_ms,
               sizeof rto_max_ms);
#endif
}

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

std::uint32_t read_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t read_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void write_le32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void write_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::vector<std::uint8_t> encode_hello(int sender, std::uint64_t app_received,
                                       std::uint64_t mon_received) {
  std::vector<std::uint8_t> rec(kHelloRecordBytes, 0);
  write_le32(rec.data(), static_cast<std::uint32_t>(kHelloRecordBytes - 4));
  rec[4] = kCtlRecord;
  rec[5] = kCtlHello;
  write_le32(rec.data() + 6, static_cast<std::uint32_t>(sender));
  write_le64(rec.data() + 10, app_received);
  write_le64(rec.data() + 18, mon_received);
  return rec;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Nonblocking connect with bounded retry: tolerates EINPROGRESS (waits
/// for completion via poll + SO_ERROR) and a listener that is not ready
/// yet (ECONNREFUSED / backlog overflow retried on a fresh socket until
/// the deadline). Used for initial mesh setup; reconnects use the epoll
/// loop's async variant instead.
int connect_with_retry(const SocketConfig& config, std::uint16_t port,
                       std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    apply_buffer_sizes(fd, config);
    set_nonblocking(fd);
    const sockaddr_in addr = loopback_addr(port);
    int err = 0;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) < 0) {
      if (errno == EINPROGRESS) {
        for (;;) {
          pollfd pfd{fd, POLLOUT, 0};
          const int pr = ::poll(&pfd, 1, 50);
          if (pr < 0 && errno == EINTR) continue;
          if (pr > 0) {
            socklen_t len = sizeof err;
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
            break;
          }
          if (std::chrono::steady_clock::now() >= deadline) {
            err = ETIMEDOUT;
            break;
          }
        }
      } else {
        err = errno;
      }
    }
    if (err == 0) return fd;
    ::close(fd);
    const bool transient = err == ECONNREFUSED || err == ETIMEDOUT ||
                           err == EAGAIN || err == ECONNRESET ||
                           err == EADDRNOTAVAIL;
    if (!transient || std::chrono::steady_clock::now() >= deadline) {
      errno = err;
      throw_errno("connect");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Accept on a nonblocking listener, polling until a connection arrives
/// or the deadline passes (setup only: the matching connect already
/// succeeded, so the connection is in the backlog or about to be).
int accept_with_retry(int listen_fd,
                      std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
      return fd;
    }
    if (errno == EINTR) continue;
    if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
        std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{listen_fd, POLLIN, 0};
      ::poll(&pfd, 1, 50);
      continue;
    }
    throw_errno("accept");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// FrameReassembler
// ---------------------------------------------------------------------------

void FrameReassembler::feed(const std::uint8_t* data, std::size_t len) {
  // Compact the consumed prefix before it dominates the buffer, so a
  // long-lived stream does not grow without bound.
  if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

bool FrameReassembler::next(std::vector<std::uint8_t>* out) {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
  }
  if (len == 0 || len > kMaxRecordBytes) {
    throw WireError("bad record length prefix");
  }
  if (avail - 4 < len) return false;
  const auto body = buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4);
  out->assign(body, body + static_cast<std::ptrdiff_t>(len));
  pos_ += 4 + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Construction: TCP loopback mesh + per-node epoll/eventfd/listener
// ---------------------------------------------------------------------------

SocketRuntime::SocketRuntime(SystemTrace trace, const AtomRegistry* registry,
                             SocketConfig config)
    : registry_(registry), config_(config), start_(Clock::now()) {
  const int n = trace.num_processes();
  history_.resize(static_cast<std::size_t>(n));
  kills_left_.store(config_.fault.enabled ? config_.fault.max_kills : 0,
                    std::memory_order_relaxed);
  node_kill_armed_.store(config_.fault.enabled && config_.fault.kill_node >= 0,
                         std::memory_order_relaxed);
  nodes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>();
    node->process = std::make_unique<ProgramProcess>(
        i, n, trace.procs[static_cast<std::size_t>(i)], registry_);
    node->expected_receives = trace.expected_receives(i);
    node->receives_left = node->expected_receives;
    node->reassembly.resize(static_cast<std::size_t>(n));
    node->peer_open.assign(static_cast<std::size_t>(n), false);
    node->app_recv.assign(static_cast<std::size_t>(n), 0);
    node->mon_recv.assign(static_cast<std::size_t>(n), 0);
    node->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (node->epoll_fd < 0) throw_errno("epoll_create1");
    node->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (node->event_fd < 0) throw_errno("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = make_tag(kKindEvent, 0);
    if (::epoll_ctl(node->epoll_fd, EPOLL_CTL_ADD, node->event_fd, &ev) < 0) {
      throw_errno("epoll_ctl eventfd");
    }
    // Persistent listener: setup connections arrive here, and so does
    // every reconnect after a link failure (lower pair index dials the
    // higher index's listener).
    node->listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (node->listen_fd < 0) throw_errno("socket");
    apply_buffer_sizes(node->listen_fd, config_);  // inherited by accept()
    sockaddr_in addr = loopback_addr(0);
    if (::bind(node->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) < 0 ||
        ::listen(node->listen_fd, n + 4) < 0) {
      throw_errno("bind/listen");
    }
    socklen_t addr_len = sizeof addr;
    if (::getsockname(node->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) < 0) {
      throw_errno("getsockname");
    }
    node->listen_port = ntohs(addr.sin_port);
    set_nonblocking(node->listen_fd);
    epoll_event lev{};
    lev.events = EPOLLIN;
    lev.data.u64 = make_tag(kKindListener, 0);
    if (::epoll_ctl(node->epoll_fd, EPOLL_CTL_ADD, node->listen_fd, &lev) <
        0) {
      throw_errno("epoll_ctl listener");
    }
    nodes_.push_back(std::move(node));
  }

  channels_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (auto& ch : channels_) ch = std::make_unique<Channel>();

  // Connect the mesh: one loopback TCP connection per unordered pair, the
  // lower index dialing the higher index's listener (the same roles a
  // reconnect uses). connect_with_retry tolerates EINPROGRESS and a
  // listener whose backlog momentarily overflows.
  const Clock::time_point setup_deadline =
      Clock::now() + std::chrono::seconds(10);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const int client = connect_with_retry(
          config_, nodes_[static_cast<std::size_t>(j)]->listen_port,
          setup_deadline);
      const int accepted = accept_with_retry(
          nodes_[static_cast<std::size_t>(j)]->listen_fd, setup_deadline);
      apply_stream_options(client);
      apply_stream_options(accepted);
      set_nonblocking(accepted);  // client is already nonblocking
      channel(i, j).fd = client;
      channel(j, i).fd = accepted;
    }
  }

  // Register every node's peer fds for reading and fill in channel owner
  // metadata (the sender side arms EPOLLOUT on the same fd when congested).
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      Channel& ch = channel(i, j);
      ch.owner_epoll = nodes_[static_cast<std::size_t>(i)]->epoll_fd;
      ch.self = i;
      ch.peer = j;
      ch.rng_state = config_.seed ^ config_.fault.seed ^
                     (0x5851F42D4C957F2Dull *
                      static_cast<std::uint64_t>(i * n + j + 1));
      if (config_.fault.enabled && config_.fault.max_kills > 0) {
        const std::uint32_t lo = std::min(config_.fault.kill_after_min,
                                          config_.fault.kill_after_max);
        const std::uint32_t hi = std::max(config_.fault.kill_after_min,
                                          config_.fault.kill_after_max);
        ch.kill_countdown =
            lo + static_cast<std::uint32_t>(splitmix64(ch.rng_state) %
                                            (hi - lo + 1));
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = make_tag(kKindPeer, static_cast<std::uint64_t>(j));
      if (::epoll_ctl(ch.owner_epoll, EPOLL_CTL_ADD, ch.fd, &ev) < 0) {
        throw_errno("epoll_ctl peer fd");
      }
      nodes_[static_cast<std::size_t>(i)]
          ->peer_open[static_cast<std::size_t>(j)] = true;
    }
  }
}

SocketRuntime::~SocketRuntime() {
  stop_.store(true);
  for (int i = 0; i < num_processes(); ++i) wake(i);
  threads_.clear();  // jthread joins
  for (auto& ch : channels_) {
    if (ch) close_if_open(ch->fd);
  }
  for (auto& node : nodes_) {
    for (PendingAccept& pa : node->pending) close_if_open(pa.fd);
    close_if_open(node->listen_fd);
    close_if_open(node->event_fd);
    close_if_open(node->epoll_fd);
  }
}

std::vector<LocalState> SocketRuntime::initial_states() const {
  std::vector<LocalState> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node->process->state());
  return out;
}

double SocketRuntime::now() const {
  return std::chrono::duration<double>(
             Clock::now() - start_.load(std::memory_order_relaxed))
      .count();
}

void SocketRuntime::wake(int index) {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t r =
      ::write(nodes_[static_cast<std::size_t>(index)]->event_fd, &one,
              sizeof one);
}

void SocketRuntime::finish_one() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Lock-then-notify: run() checks the counter under the mutex, so the
    // notification cannot slip between its check and its wait.
    std::scoped_lock lock(quiesce_mutex_);
    quiesce_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void SocketRuntime::encode_record_locked(Channel& ch,
                                         const NetPayload& payload) {
  std::vector<std::uint8_t> rec(kRecordHeader, 0);
  rec[4] = kMonRecord;
  encode_payload_into(payload, rec);
  const std::size_t body = rec.size() - 4;  // type byte + payload bytes
  write_le32(rec.data(), static_cast<std::uint32_t>(body));
  // Transport-truth accounting: TCP delivers every queued byte, so the
  // encoded length is the on-wire cost -- no size-walking here. (Bytes a
  // reconnect re-sends -- the partially written front record -- are not
  // re-counted: counters stay logical-record-deterministic under faults.)
  wire_bytes_.fetch_add(rec.size(), std::memory_order_relaxed);
  wire_frames_.fetch_add(1, std::memory_order_relaxed);
  ch.queued_bytes += rec.size();
  ch.queue.push_back(OutRecord{std::move(rec), kMonRecord});
}

void SocketRuntime::materialize_staging_locked(Channel& ch) {
  encode_record_locked(ch, *ch.staging);
  ch.staging.reset();
}

void SocketRuntime::flush_locked(Channel& ch) {
  // Data writes are gated until the link is up and the HELLO exchange has
  // re-armed the queue; a down (or dying) link just accumulates (staging
  // bounds the growth).
  if (ch.state != LinkState::kUp || ch.fd < 0 || ch.kill_pending ||
      ch.io_error) {
    return;
  }
  bool blocked = false;
  bool failed = false;
  while (!blocked) {
    if (ch.queue.empty()) {
      if (!ch.staging) break;
      materialize_staging_locked(ch);
    }
    OutRecord& front = ch.queue.front();
    while (ch.front_off < front.bytes.size()) {
      const ssize_t k =
          ::send(ch.fd, front.bytes.data() + ch.front_off,
                 front.bytes.size() - ch.front_off, MSG_NOSIGNAL);
      if (k >= 0) {
        if (static_cast<std::size_t>(k) < front.bytes.size() - ch.front_off) {
          partial_writes_.fetch_add(1, std::memory_order_relaxed);
        }
        ch.front_off += static_cast<std::size_t>(k);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        partial_writes_.fetch_add(1, std::memory_order_relaxed);
        blocked = true;
        break;
      }
      // Link failure (ECONNRESET, EPIPE, ...): flag it for the owner --
      // the fd's lifecycle is owner-thread only -- and stop writing.
      failed = true;
      blocked = true;
      break;
    }
    if (!blocked) {
      ch.queued_bytes -= front.bytes.size();
      ch.front_off = 0;
      if (front.kind == kMonRecord) {
        ++ch.mon_written;
        if (ch.kill_countdown > 0 && --ch.kill_countdown == 0 &&
            kills_left_.fetch_sub(1, std::memory_order_acq_rel) > 0) {
          // Seeded fault: this connection dies right here. The owner
          // performs the abortive close; stop feeding the doomed socket.
          ch.kill_pending = true;
        }
      }
      ch.queue.pop_front();
      if (ch.kill_pending) blocked = true;
    }
  }
  if (failed || ch.kill_pending) {
    ch.io_error = ch.io_error || failed;
    nodes_[static_cast<std::size_t>(ch.self)]->links_dirty.store(
        true, std::memory_order_release);
    wake(ch.self);
    return;
  }
  // Keep epoll write-interest in sync with the queue state. epoll_ctl is
  // thread-safe; want_write is guarded by ch.mutex, which the caller holds.
  const bool need_write = !ch.queue.empty() || ch.staging != nullptr;
  if (need_write != ch.want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (need_write ? EPOLLOUT : 0u);
    ev.data.u64 = make_tag(kKindPeer, static_cast<std::uint64_t>(ch.peer));
    if (::epoll_ctl(ch.owner_epoll, EPOLL_CTL_MOD, ch.fd, &ev) == 0) {
      ch.want_write = need_write;
    }
  }
}

void SocketRuntime::enqueue_monitor(int from, int to,
                                    std::unique_ptr<NetPayload> payload) {
  Channel& ch = channel(from, to);
  std::scoped_lock lock(ch.mutex);
  if (payload->tag == PayloadFrame::kTag) {
    std::unique_ptr<PayloadFrame> frame(
        static_cast<PayloadFrame*>(payload.release()));
    if (frame->units.empty()) {
      finish_one();  // nothing to deliver; retire the message's credit
      return;
    }
    if (!config_.batch) {
      // Unbatched control posture: every unit crosses as its own record.
      // The frame's single work credit becomes one credit per record; add
      // the difference before any record can complete at the receiver.
      outstanding_.fetch_add(
          static_cast<std::int64_t>(frame->units.size()) - 1,
          std::memory_order_acq_rel);
      for (const auto& unit : frame->units) encode_record_locked(ch, *unit);
    } else if (ch.staging) {
      // Channel congested and a frame is already parked: merge (this is
      // the kTransit convoy on real congestion). The merged frame's bytes
      // are now owed by the staging frame's credit, so this one retires.
      for (auto& unit : frame->units) {
        ch.staging->units.push_back(std::move(unit));
      }
      coalesced_frames_.fetch_add(1, std::memory_order_relaxed);
      finish_one();
    } else if (!ch.queue.empty() || ch.queued_bytes >= config_.max_queue_bytes) {
      // Earlier bytes still queued: park instead of encoding, so later
      // frames can join and the queue stays bounded.
      ch.staging = std::move(frame);
    } else {
      encode_record_locked(ch, *frame);
    }
  } else {
    // Singleton payloads (tokens, terminations, channel envelopes) keep
    // FIFO order with frames: anything parked must hit the queue first.
    if (ch.staging) materialize_staging_locked(ch);
    encode_record_locked(ch, *payload);
  }
  flush_locked(ch);
}

void SocketRuntime::send(MonitorMessage msg) {
  send_perturbed(std::move(msg), DeliveryPerturbation{});
}

void SocketRuntime::send_perturbed(MonitorMessage msg,
                                   const DeliveryPerturbation& perturbation) {
  if (msg.from < 0 || msg.from >= num_processes() || msg.to < 0 ||
      msg.to >= num_processes() || !msg.payload) {
    throw std::out_of_range("SocketRuntime::send: bad message");
  }
  // Count the work unit before it becomes visible anywhere (credit-counting
  // quiescence, see header).
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (msg.from == msg.to) {
    // Self-delivery, possibly delayed (reliable-channel retransmit timers).
    // Nothing crosses the network; honored via the node's timer heap.
    // extra_delay is expressed in now() units -- for this runtime that is
    // real (unscaled) seconds, so it must NOT go through to_wall():
    // time_scale compresses scripted trace waits, and scaling a deadline
    // that was computed against the real clock would make every timer fire
    // early -- at time_scale=0, an armed retransmit timer would refire
    // immediately forever and quiescence could never be declared.
    Clock::time_point at = Clock::now();
    if (perturbation.extra_delay > 0.0) {
      at = advance_saturated(
          at, std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::duration<double>(perturbation.extra_delay)));
    }
    Node& node = *nodes_[static_cast<std::size_t>(msg.to)];
    {
      std::scoped_lock lock(node.timer_mutex);
      node.timers.push(
          Timer{at, timer_seq_.fetch_add(1, std::memory_order_relaxed),
                std::move(msg)});
    }
    wake(msg.to);
    return;
  }
  // Cross-node: the transport is a real TCP stream, so there is no modeled
  // latency to perturb and per-channel FIFO is physical; extra_delay and
  // bypass_fifo are simulation concepts and are ignored here.
  monitor_sends_.fetch_add(1, std::memory_order_relaxed);
  enqueue_monitor(msg.from, msg.to, std::move(msg.payload));
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void SocketRuntime::record_event(int index, const Event& event) {
  program_events_.fetch_add(1, std::memory_order_relaxed);
  history_[static_cast<std::size_t>(index)].push_back(event);
  if (hooks_) hooks_->on_local_event(index, event, now());
}

void SocketRuntime::dispatch_record(int index, int peer,
                                    const std::vector<std::uint8_t>& rec) {
  Node& node = *nodes_[static_cast<std::size_t>(index)];
  if (rec.empty()) throw WireError("empty record");
  if (rec[0] == kCtlRecord) {
    // HELLO from a reconnected peer: reconcile our send direction.
    if (rec.size() != kHelloRecordBytes - 4 || rec[1] != kCtlHello) {
      throw WireError("bad control record");
    }
    if (static_cast<int>(read_le32(rec.data() + 2)) != peer) {
      throw WireError("hello from wrong peer");
    }
    process_hello(index, peer, read_le64(rec.data() + 6),
                  read_le64(rec.data() + 14));
    return;
  }
  node.scratch.assign(rec.begin() + 1, rec.end());
  if (rec[0] == kAppRecord) {
    WireReader r(node.scratch);
    AppMessage msg;
    msg.from = static_cast<int>(r.u32());
    msg.to = index;
    msg.send_sn = r.u32();
    msg.vc = r.vc(nodes_.size());
    r.done();
    if (msg.from != peer) throw WireError("app record from wrong peer");
    ++node.app_recv[static_cast<std::size_t>(peer)];
    const Event e = node.process->receive(msg, now());
    --node.receives_left;
    record_event(index, e);
    finish_one();
  } else if (rec[0] == kMonRecord) {
    auto payload = decode_payload(node.scratch, nodes_.size());
    ++node.mon_recv[static_cast<std::size_t>(peer)];
    ++node.mon_recv_total;
    monitor_deliveries_.fetch_add(1, std::memory_order_relaxed);
    if (hooks_) {
      hooks_->on_monitor_message(MonitorMessage{peer, index, std::move(payload)},
                                 now());
    }
    finish_one();
    // Node-kill drill: once this node has dispatched enough monitor
    // records, every one of its links dies at once (transport face of a
    // crash; the hooks-layer CrashInjector owns the state restore).
    if (node_kill_armed_.load(std::memory_order_relaxed) &&
        config_.fault.kill_node == index &&
        node.mon_recv_total > config_.fault.kill_node_after &&
        node_kill_armed_.exchange(false, std::memory_order_acq_rel)) {
      for (int p = 0; p < num_processes(); ++p) {
        if (p != index) request_kill(index, p);
      }
    }
  } else {
    throw WireError("unknown record type");
  }
}

void SocketRuntime::read_peer(int index, int peer) {
  Node& node = *nodes_[static_cast<std::size_t>(index)];
  if (!node.peer_open[static_cast<std::size_t>(peer)]) return;
  const int fd = channel(index, peer).fd;  // fd changes only on this thread
  if (fd < 0) return;
  FrameReassembler& ra = node.reassembly[static_cast<std::size_t>(peer)];
  std::uint8_t buf[65536];
  std::vector<std::uint8_t> rec;
  for (;;) {
    const ssize_t k = ::recv(fd, buf, sizeof buf, 0);
    if (k > 0) {
      ra.feed(buf, static_cast<std::size_t>(k));
      while (ra.next(&rec)) dispatch_record(index, peer, rec);
      continue;
    }
    if (k < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    }
    // EOF or a hard socket error (ECONNRESET after an abortive kill): the
    // peer is down, not the run. Partial bytes die with the reassembler
    // reset; the HELLO reconciliation replays or retires what was lost.
    if (stop_.load(std::memory_order_acquire)) {
      node.peer_open[static_cast<std::size_t>(peer)] = false;
      ::epoll_ctl(node.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
      return;
    }
    link_down(index, peer, /*abortive=*/false);
    return;
  }
}

void SocketRuntime::broadcast_app(int index, const AppMessage& message) {
  // Encode the body once (identical for every destination: the receiver id
  // is implied by the stream) and enqueue a copy per peer.
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.u32(static_cast<std::uint32_t>(message.from));
  w.u32(message.send_sn);
  w.vc(message.vc);
  for (int to = 0; to < num_processes(); ++to) {
    if (to == index) continue;
    app_messages_.fetch_add(1, std::memory_order_relaxed);
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    Channel& ch = channel(index, to);
    std::scoped_lock lock(ch.mutex);
    std::vector<std::uint8_t> rec(kRecordHeader + body.size());
    write_le32(rec.data(), static_cast<std::uint32_t>(body.size() + 1));
    rec[4] = kAppRecord;
    std::memcpy(rec.data() + kRecordHeader, body.data(), body.size());
    app_bytes_.fetch_add(rec.size(), std::memory_order_relaxed);
    ch.queued_bytes += rec.size();
    // App records are transport-reliable: losing one would strand the
    // receiver's expected-receives count forever, so every record is
    // retained in the replay log until a peer HELLO confirms delivery.
    ch.app_log.push_back(rec);
    ch.queue.push_back(OutRecord{std::move(rec), kAppRecord});
    flush_locked(ch);
  }
}

// ---------------------------------------------------------------------------
// Link lifecycle: failure detection, reconnect, HELLO reconciliation
// ---------------------------------------------------------------------------

void SocketRuntime::link_down(int index, int peer, bool abortive) {
  Channel& ch = channel(index, peer);
  std::scoped_lock lock(ch.mutex);
  link_down_locked(ch, abortive);
}

void SocketRuntime::link_down_locked(Channel& ch, bool abortive) {
  Node& node = *nodes_[static_cast<std::size_t>(ch.self)];
  ch.io_error = false;
  ch.kill_pending = false;
  if (ch.fd >= 0) {
    if (abortive) {
      // RST instead of FIN: queued and in-flight bytes genuinely die, so
      // the reconciliation machinery is exercised, not just the handshake.
      const linger lg{1, 0};
      ::setsockopt(ch.fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    }
    ::close(ch.fd);  // also deregisters from epoll
    ch.fd = -1;
  } else if (ch.state == LinkState::kDown) {
    return;  // already torn down; keep the backoff clock
  }
  ch.state = LinkState::kDown;
  ch.want_write = false;
  ch.front_off = 0;  // partial front record is re-sent whole after HELLO
  node.peer_open[static_cast<std::size_t>(ch.peer)] = false;
  node.reassembly[static_cast<std::size_t>(ch.peer)].reset();
  ch.next_attempt_at = Clock::now();
  node.links_dirty.store(true, std::memory_order_release);
}

void SocketRuntime::schedule_retry_locked(Channel& ch) {
  ++ch.attempts;
  double delay_ms =
      config_.reconnect_base_ms *
      std::ldexp(1.0, std::min(ch.attempts - 1, 20));
  delay_ms = std::min(delay_ms, config_.reconnect_cap_ms);
  // Seeded jitter in [0.5, 1.5): reconnect storms decorrelate but stay
  // reproducible for a given (config seed, channel) pair.
  const double jitter =
      0.5 + static_cast<double>(splitmix64(ch.rng_state) >> 11) * 0x1.0p-53;
  delay_ms *= jitter;
  ch.next_attempt_at = advance_saturated(
      Clock::now(),
      std::chrono::nanoseconds(static_cast<std::int64_t>(delay_ms * 1e6)));
  nodes_[static_cast<std::size_t>(ch.self)]->links_dirty.store(
      true, std::memory_order_release);
}

SocketRuntime::Clock::time_point SocketRuntime::service_links(int index) {
  Node& node = *nodes_[static_cast<std::size_t>(index)];
  Clock::time_point deadline = Clock::time_point::max();
  // Clear-before-scan: a foreign thread that flags a channel after its
  // scan re-raises the flag (and wakes us), so nothing is lost.
  if (!node.links_dirty.exchange(false, std::memory_order_acq_rel)) {
    return deadline;
  }
  bool all_up = true;
  for (int peer = 0; peer < num_processes(); ++peer) {
    if (peer == index) continue;
    Channel& ch = channel(index, peer);
    std::scoped_lock lock(ch.mutex);
    if (ch.kill_pending) {
      if (ch.fd >= 0) {
        connections_killed_.fetch_add(1, std::memory_order_relaxed);
      }
      link_down_locked(ch, /*abortive=*/true);
    } else if (ch.io_error) {
      link_down_locked(ch, /*abortive=*/false);
    }
    if (ch.state == LinkState::kDown && index < peer) {
      // This side dials (the pair's lower index reconnects; the higher
      // index's listener answers -- same roles as setup).
      if (ch.attempts > config_.max_reconnect_attempts) {
        throw std::runtime_error(
            "SocketRuntime: reconnect budget exhausted (node " +
            std::to_string(index) + " -> " + std::to_string(peer) + ")");
      }
      if (Clock::now() >= ch.next_attempt_at) begin_connect_locked(ch);
    }
    if (ch.state != LinkState::kUp) {
      all_up = false;
      if (ch.state == LinkState::kDown && index < peer) {
        deadline = std::min(deadline, ch.next_attempt_at);
      }
    }
  }
  if (!all_up) node.links_dirty.store(true, std::memory_order_release);
  return deadline;
}

void SocketRuntime::begin_connect_locked(Channel& ch) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    schedule_retry_locked(ch);
    return;
  }
  apply_buffer_sizes(fd, config_);
  set_nonblocking(fd);
  const sockaddr_in addr = loopback_addr(
      nodes_[static_cast<std::size_t>(ch.peer)]->listen_port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
      0) {
    finish_connect_locked(ch, fd);
    return;
  }
  if (errno == EINPROGRESS) {
    ch.fd = fd;
    ch.state = LinkState::kConnecting;
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.u64 = make_tag(kKindConnect, static_cast<std::uint64_t>(ch.peer));
    if (::epoll_ctl(ch.owner_epoll, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      ch.fd = -1;
      ch.state = LinkState::kDown;
      schedule_retry_locked(ch);
    }
    return;
  }
  ::close(fd);
  schedule_retry_locked(ch);
}

void SocketRuntime::on_connect_ready(int index, int peer) {
  Channel& ch = channel(index, peer);
  std::scoped_lock lock(ch.mutex);
  if (ch.state != LinkState::kConnecting || ch.fd < 0) return;  // stale event
  int err = 0;
  socklen_t len = sizeof err;
  ::getsockopt(ch.fd, SOL_SOCKET, SO_ERROR, &err, &len);
  if (err == 0) {
    // Guard against a stale EPOLLOUT from a previous attempt's fd number:
    // SO_ERROR is 0 while a connect is merely in progress.
    sockaddr_in who{};
    socklen_t wlen = sizeof who;
    if (::getpeername(ch.fd, reinterpret_cast<sockaddr*>(&who), &wlen) < 0) {
      return;  // not connected yet; wait for the real completion event
    }
    const int fd = ch.fd;
    ch.fd = -1;
    finish_connect_locked(ch, fd);
    return;
  }
  ::close(ch.fd);
  ch.fd = -1;
  ch.state = LinkState::kDown;
  schedule_retry_locked(ch);
}

void SocketRuntime::finish_connect_locked(Channel& ch, int fd) {
  Node& node = *nodes_[static_cast<std::size_t>(ch.self)];
  apply_stream_options(fd);
  ch.fd = fd;
  ch.front_off = 0;
  ch.want_write = false;
  ch.state = LinkState::kHelloWait;
  node.reassembly[static_cast<std::size_t>(ch.peer)].reset();
  node.peer_open[static_cast<std::size_t>(ch.peer)] = true;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = make_tag(kKindPeer, static_cast<std::uint64_t>(ch.peer));
  if (::epoll_ctl(ch.owner_epoll, EPOLL_CTL_MOD, fd, &ev) < 0 &&
      ::epoll_ctl(ch.owner_epoll, EPOLL_CTL_ADD, fd, &ev) < 0) {
    link_down_locked(ch, /*abortive=*/false);
    schedule_retry_locked(ch);
    return;
  }
  if (!send_hello_locked(ch)) {
    link_down_locked(ch, /*abortive=*/false);
    schedule_retry_locked(ch);
    return;
  }
  // Counted once per outage, on the dialing side (the acceptor's half of
  // the same re-establishment is not a second reconnect).
  reconnects_.fetch_add(1, std::memory_order_relaxed);
}

bool SocketRuntime::send_hello_locked(Channel& ch) {
  // HELLO bypasses the data queue (which is gated until reconciliation)
  // and is deliberately absent from wire/app byte accounting: it is
  // transport overhead, so the committed no-fault socket.* bench counts
  // stay untouched by the fault-tolerance machinery.
  Node& node = *nodes_[static_cast<std::size_t>(ch.self)];
  const std::vector<std::uint8_t> rec = encode_hello(
      ch.self, node.app_recv[static_cast<std::size_t>(ch.peer)],
      node.mon_recv[static_cast<std::size_t>(ch.peer)]);
  std::size_t off = 0;
  while (off < rec.size()) {
    const ssize_t k =
        ::send(ch.fd, rec.data() + off, rec.size() - off, MSG_NOSIGNAL);
    if (k >= 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Fresh connection: the buffer is empty unless the connect has not
      // fully completed yet; poll for writability (or failure) briefly.
      pollfd pfd{ch.fd, POLLOUT, 0};
      ::poll(&pfd, 1, 50);
      continue;
    }
    return false;
  }
  return true;
}

void SocketRuntime::process_hello(int index, int peer,
                                  std::uint64_t app_received,
                                  std::uint64_t mon_received) {
  Channel& ch = channel(index, peer);
  std::scoped_lock lock(ch.mutex);
  if (ch.state != LinkState::kHelloWait) return;  // stale or duplicate
  // Drop the app-log prefix the peer confirms it dispatched...
  while (ch.app_log_base < app_received && !ch.app_log.empty()) {
    ch.app_log.pop_front();
    ++ch.app_log_base;
  }
  // ...then rebuild the queue's app plane from the log: queued app records
  // are a suffix of the log, so removing them and replaying everything the
  // peer has not seen restores order without duplicates.
  for (auto it = ch.queue.begin(); it != ch.queue.end();) {
    if (it->kind == kAppRecord) {
      ch.queued_bytes -= it->bytes.size();
      it = ch.queue.erase(it);
    } else {
      ++it;
    }
  }
  ch.front_off = 0;
  for (auto it = ch.app_log.rbegin(); it != ch.app_log.rend(); ++it) {
    ch.queued_bytes += it->size();
    ch.queue.push_front(OutRecord{*it, kAppRecord});
  }
  // Monitor records that were fully written but never dispatched died with
  // the old connection: retire their quiescence credits (the reliable
  // channel layered above re-sends the content; without one this is the
  // lossy-network posture the monitors already tolerate).
  if (mon_received + ch.mon_lost > ch.mon_written) {
    throw WireError("hello count ahead of writer");
  }
  const std::uint64_t lost = ch.mon_written - mon_received - ch.mon_lost;
  ch.mon_lost += lost;
  if (lost > 0) {
    disconnect_drops_.fetch_add(lost, std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < lost; ++i) finish_one();
  }
  ch.state = LinkState::kUp;
  ch.attempts = 0;
  flush_locked(ch);
}

void SocketRuntime::accept_pending(int index) {
  Node& node = *nodes_[static_cast<std::size_t>(index)];
  for (;;) {
    const int fd = ::accept(node.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: the event re-arms
    }
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    set_nonblocking(fd);
    node.pending.push_back(PendingAccept{fd, {}});
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = make_tag(kKindPending, static_cast<std::uint64_t>(fd));
    if (::epoll_ctl(node.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      node.pending.pop_back();
      continue;
    }
    identify_pending(index, fd);  // the HELLO may already be readable
  }
}

void SocketRuntime::identify_pending(int index, int pending_fd) {
  Node& node = *nodes_[static_cast<std::size_t>(index)];
  auto it = std::find_if(
      node.pending.begin(), node.pending.end(),
      [pending_fd](const PendingAccept& pa) { return pa.fd == pending_fd; });
  if (it == node.pending.end()) return;
  bool dead = false;
  std::uint8_t buf[256];
  while (it->buf.size() < kHelloRecordBytes) {
    const ssize_t k = ::recv(pending_fd, buf, sizeof buf, 0);
    if (k > 0) {
      it->buf.insert(it->buf.end(), buf, buf + k);
      continue;
    }
    if (k < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    }
    dead = true;  // EOF or error before identifying itself
    break;
  }
  // Validate as much of the HELLO as has arrived; anything that is not a
  // HELLO-first stream is not one of ours.
  if (!dead && it->buf.size() >= 4 &&
      read_le32(it->buf.data()) != kHelloRecordBytes - 4) {
    dead = true;
  }
  if (!dead && it->buf.size() >= 6 &&
      (it->buf[4] != kCtlRecord || it->buf[5] != kCtlHello)) {
    dead = true;
  }
  if (dead) {
    ::close(pending_fd);
    node.pending.erase(it);
    return;
  }
  if (it->buf.size() < kHelloRecordBytes) return;  // wait for more bytes
  const int sender = static_cast<int>(read_le32(it->buf.data() + 6));
  // Only the pair's lower index dials this listener.
  if (sender < 0 || sender >= index) {
    ::close(pending_fd);
    node.pending.erase(it);
    return;
  }
  const std::uint64_t app_received = read_le64(it->buf.data() + 10);
  const std::uint64_t mon_received = read_le64(it->buf.data() + 18);
  std::vector<std::uint8_t> leftovers(
      it->buf.begin() + static_cast<std::ptrdiff_t>(kHelloRecordBytes),
      it->buf.end());
  node.pending.erase(it);  // fd ownership moves to the channel below

  Channel& ch = channel(index, sender);
  bool ok = false;
  {
    std::scoped_lock lock(ch.mutex);
    if (ch.fd >= 0 && ch.fd != pending_fd) {
      // The peer abandoned the old connection (we may not have read its
      // RST yet); the new one supersedes it.
      ::close(ch.fd);
    }
    ch.fd = pending_fd;
    ch.front_off = 0;
    ch.want_write = false;
    ch.io_error = false;
    ch.kill_pending = false;
    ch.state = LinkState::kHelloWait;
    apply_stream_options(pending_fd);
    node.reassembly[static_cast<std::size_t>(sender)].reset();
    node.peer_open[static_cast<std::size_t>(sender)] = true;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = make_tag(kKindPeer, static_cast<std::uint64_t>(sender));
    if (::epoll_ctl(node.epoll_fd, EPOLL_CTL_MOD, pending_fd, &ev) == 0) {
      ok = send_hello_locked(ch);
    }
  }
  if (!ok) {
    link_down(index, sender, /*abortive=*/false);
    return;
  }
  process_hello(index, sender, app_received, mon_received);
  if (!leftovers.empty()) {
    FrameReassembler& ra = node.reassembly[static_cast<std::size_t>(sender)];
    ra.feed(leftovers.data(), leftovers.size());
    std::vector<std::uint8_t> rec;
    while (ra.next(&rec)) dispatch_record(index, sender, rec);
  }
}

void SocketRuntime::request_kill(int from, int to) {
  Channel& ch = channel(from, to);
  {
    std::scoped_lock lock(ch.mutex);
    if (ch.fd < 0 && ch.state == LinkState::kDown) return;  // already dead
    ch.kill_pending = true;
  }
  nodes_[static_cast<std::size_t>(from)]->links_dirty.store(
      true, std::memory_order_release);
  wake(from);
}

void SocketRuntime::kill_connection(int a, int b) {
  if (a < 0 || a >= num_processes() || b < 0 || b >= num_processes() ||
      a == b) {
    throw std::out_of_range("SocketRuntime::kill_connection: bad pair");
  }
  request_kill(a, b);
}

void SocketRuntime::kill_node(int node) {
  if (node < 0 || node >= num_processes()) {
    throw std::out_of_range("SocketRuntime::kill_node: bad node");
  }
  for (int p = 0; p < num_processes(); ++p) {
    if (p != node) request_kill(node, p);
  }
}

// ---------------------------------------------------------------------------
// Node event loop + run()
// ---------------------------------------------------------------------------

void SocketRuntime::node_main(int index) {
  try {
    node_body(index);
  } catch (...) {
    {
      std::scoped_lock lock(error_mutex_);
      if (!run_error_) run_error_ = std::current_exception();
    }
    failed_.store(true, std::memory_order_release);
    stop_.store(true, std::memory_order_release);
    for (int i = 0; i < num_processes(); ++i) wake(i);
    // Unblock run(): quiescence is unreachable once a node has failed.
    std::scoped_lock lock(quiesce_mutex_);
    quiesce_cv_.notify_all();
  }
}

void SocketRuntime::node_body(int index) {
  Node& node = *nodes_[static_cast<std::size_t>(index)];
  ProgramProcess& proc = *node.process;
  const Clock::time_point run_start = start_.load(std::memory_order_relaxed);

  bool announced_termination = false;
  // Action times derive from the *scheduled* time of the previous action
  // (not Clock::now() after it ran), so processing latency never compounds
  // into trace-time drift.
  Clock::time_point next_action =
      proc.has_next_action()
          ? advance_saturated(
                run_start, to_wall(proc.next_action_wait(), config_.time_scale))
          : Clock::time_point::max();

  epoll_event events[16];
  while (!stop_.load(std::memory_order_acquire)) {
    // 1. Deliver due timers (delayed self-sends).
    for (;;) {
      std::optional<MonitorMessage> due;
      {
        std::scoped_lock lock(node.timer_mutex);
        if (!node.timers.empty() && node.timers.top().at <= Clock::now()) {
          due = std::move(const_cast<Timer&>(node.timers.top()).msg);
          node.timers.pop();
        }
      }
      if (!due) break;
      monitor_deliveries_.fetch_add(1, std::memory_order_relaxed);
      if (hooks_) hooks_->on_monitor_message(std::move(*due), now());
      finish_one();
    }
    // 2. Execute a due program action.
    if (proc.has_next_action() && Clock::now() >= next_action) {
      ProgramProcess::ActionResult result = proc.execute_next_action(now());
      record_event(index, result.event);
      if (result.is_comm) broadcast_app(index, result.message);
      next_action = proc.has_next_action()
                        ? advance_saturated(next_action,
                                            to_wall(proc.next_action_wait(),
                                                    config_.time_scale))
                        : Clock::time_point::max();
      continue;  // more actions may already be due
    }
    // 3. Termination: the program's work unit ends after its hook, so
    // sends made by the hook are counted before the release.
    if (!announced_termination && !proc.has_next_action() &&
        node.receives_left == 0) {
      announced_termination = true;
      if (hooks_) hooks_->on_local_termination(index, now());
      finish_one();
    }
    // 4. Service flagged links (teardowns, pending kills, due reconnect
    // attempts); the earliest backoff deadline bounds the epoll wait.
    const Clock::time_point link_deadline = service_links(index);
    // 5. Block on epoll until bytes arrive, a socket drains, a wakeup is
    // posted, or the earliest local deadline passes. The 50 ms cap is
    // insurance only -- every state change also posts a wakeup.
    Clock::time_point wake_at = std::min(next_action, link_deadline);
    {
      std::scoped_lock lock(node.timer_mutex);
      if (!node.timers.empty()) wake_at = std::min(wake_at, node.timers.top().at);
    }
    int timeout_ms = 50;
    const Clock::time_point wall = Clock::now();
    if (wake_at <= wall) {
      timeout_ms = 0;
    } else if (wake_at != Clock::time_point::max()) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          wake_at - wall)
                          .count() +
                      1;
      timeout_ms = static_cast<int>(std::clamp<long long>(ms, 0, 50));
    }
    const int nev = ::epoll_wait(node.epoll_fd, events, 16, timeout_ms);
    for (int e = 0; e < nev; ++e) {
      const std::uint64_t tag = events[e].data.u64;
      const std::uint32_t value = static_cast<std::uint32_t>(tag);
      switch (tag >> 32) {
        case kKindEvent: {
          std::uint64_t drained = 0;
          [[maybe_unused]] const ssize_t r =
              ::read(node.event_fd, &drained, sizeof drained);
          break;
        }
        case kKindListener:
          accept_pending(index);
          break;
        case kKindPending:
          identify_pending(index, static_cast<int>(value));
          break;
        case kKindConnect:
          if (events[e].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) {
            on_connect_ready(index, static_cast<int>(value));
          }
          break;
        case kKindPeer: {
          const int peer = static_cast<int>(value);
          if (events[e].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
            read_peer(index, peer);
          }
          if (events[e].events & EPOLLOUT) {
            Channel& ch = channel(index, peer);
            std::scoped_lock lock(ch.mutex);
            flush_locked(ch);
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

void SocketRuntime::run() {
  start_.store(Clock::now(), std::memory_order_relaxed);
  stop_.store(false);
  failed_.store(false, std::memory_order_relaxed);
  {
    std::scoped_lock lock(error_mutex_);
    run_error_ = nullptr;
  }
  // One work unit per program; pre-run sends were already counted by
  // send_perturbed.
  outstanding_.fetch_add(num_processes(), std::memory_order_acq_rel);
  threads_.clear();
  threads_.reserve(static_cast<std::size_t>(num_processes()));
  for (int i = 0; i < num_processes(); ++i) {
    history_[static_cast<std::size_t>(i)].clear();
    history_[static_cast<std::size_t>(i)].push_back(
        nodes_[static_cast<std::size_t>(i)]->process->initial_event());
    threads_.emplace_back([this, i] { node_main(i); });
  }
  {
    std::unique_lock lock(quiesce_mutex_);
    quiesce_cv_.wait(lock, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0 ||
             failed_.load(std::memory_order_acquire);
    });
  }
  stop_.store(true);
  for (int i = 0; i < num_processes(); ++i) wake(i);
  threads_.clear();  // join
  std::exception_ptr err;
  {
    std::scoped_lock lock(error_mutex_);
    err = std::exchange(run_error_, nullptr);
  }
  if (err) {
    outstanding_.store(0, std::memory_order_release);
    std::rethrow_exception(err);
  }
}

}  // namespace decmon
