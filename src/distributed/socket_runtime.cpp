#include "decmon/distributed/socket_runtime.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <stdexcept>
#include <system_error>

#include "decmon/monitor/wire.hpp"

namespace decmon {

namespace {

// Record type bytes (after the u32 length prefix).
constexpr std::uint8_t kAppRecord = 0x01;
constexpr std::uint8_t kMonRecord = 0x02;
constexpr std::size_t kRecordHeader = 5;  // u32 length + type byte

// epoll user-data sentinel for the per-node eventfd.
constexpr std::uint32_t kEventFdTag = std::numeric_limits<std::uint32_t>::max();

/// Saturation bound for trace-time -> wall-time conversion (same rationale
/// as ThreadRuntime's).
constexpr std::chrono::nanoseconds kMaxWall{
    std::numeric_limits<std::int64_t>::max() / 4};

std::chrono::nanoseconds to_wall(double trace_seconds, double scale) {
  const double wall_ns = std::max(0.0, trace_seconds * scale) * 1e9;
  if (!(wall_ns < static_cast<double>(kMaxWall.count()))) return kMaxWall;
  return std::chrono::nanoseconds(static_cast<std::int64_t>(wall_ns));
}

std::chrono::steady_clock::time_point advance_saturated(
    std::chrono::steady_clock::time_point tp, std::chrono::nanoseconds d) {
  using TP = std::chrono::steady_clock::time_point;
  if (tp >= TP::max() - d) return TP::max();
  return tp + std::chrono::duration_cast<TP::duration>(d);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

void apply_buffer_sizes(int fd, const SocketConfig& config) {
  if (config.sndbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config.sndbuf,
                 sizeof config.sndbuf);
  }
  if (config.rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &config.rcvbuf,
                 sizeof config.rcvbuf);
  }
  // Loopback negotiates an MSS near its 64 KiB MTU. When the configured
  // buffers are of the same order, the advertised receive window can sink
  // below one segment whenever the reader lags; the sender's silly-window
  // avoidance then refuses to transmit at all and the stream degenerates
  // into zero-window persist probes -- hundreds of milliseconds apart and
  // exponentially backed off -- while both ends sit idle (observed as
  // multi-second whole-run stalls: `ss` shows notsent > 0, snd_wnd < mss,
  // timer:(persist,...) and rwnd_limited ~90%). Clamp the MSS so the
  // window always holds several segments, as it would on a real network
  // path where the MTU is tiny relative to any sane buffer size.
  int cap = config.rcvbuf;
  if (config.sndbuf > 0 && (cap <= 0 || config.sndbuf < cap)) {
    cap = config.sndbuf;
  }
  if (cap > 0) {
    const int mss = std::clamp(cap / 4, 1024, 65483);
    ::setsockopt(fd, IPPROTO_TCP, TCP_MAXSEG, &mss, sizeof mss);
  }
}

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// FrameReassembler
// ---------------------------------------------------------------------------

void FrameReassembler::feed(const std::uint8_t* data, std::size_t len) {
  // Compact the consumed prefix before it dominates the buffer, so a
  // long-lived stream does not grow without bound.
  if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

bool FrameReassembler::next(std::vector<std::uint8_t>* out) {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
  }
  if (len == 0 || len > kMaxRecordBytes) {
    throw WireError("bad record length prefix");
  }
  if (avail - 4 < len) return false;
  const auto body = buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4);
  out->assign(body, body + static_cast<std::ptrdiff_t>(len));
  pos_ += 4 + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Construction: TCP loopback mesh + per-node epoll/eventfd
// ---------------------------------------------------------------------------

SocketRuntime::SocketRuntime(SystemTrace trace, const AtomRegistry* registry,
                             SocketConfig config)
    : registry_(registry), config_(config), start_(Clock::now()) {
  const int n = trace.num_processes();
  history_.resize(static_cast<std::size_t>(n));
  nodes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>();
    node->process = std::make_unique<ProgramProcess>(
        i, n, trace.procs[static_cast<std::size_t>(i)], registry_);
    node->expected_receives = trace.expected_receives(i);
    node->receives_left = node->expected_receives;
    node->reassembly.resize(static_cast<std::size_t>(n));
    node->peer_open.assign(static_cast<std::size_t>(n), false);
    node->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (node->epoll_fd < 0) throw_errno("epoll_create1");
    node->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (node->event_fd < 0) throw_errno("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = kEventFdTag;
    if (::epoll_ctl(node->epoll_fd, EPOLL_CTL_ADD, node->event_fd, &ev) < 0) {
      throw_errno("epoll_ctl eventfd");
    }
    nodes_.push_back(std::move(node));
  }

  channels_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (auto& ch : channels_) ch = std::make_unique<Channel>();

  // Connect the mesh: one loopback TCP connection per unordered pair, set
  // up sequentially (the listen backlog absorbs the connect while nobody
  // accepts yet), then both ends go nonblocking. TCP_NODELAY keeps small
  // monitor records from being Nagle-delayed behind unacked data.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (listener < 0) throw_errno("socket");
      apply_buffer_sizes(listener, config_);  // inherited by accept()
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = 0;
      if (::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                 sizeof addr) < 0 ||
          ::listen(listener, 1) < 0) {
        throw_errno("bind/listen");
      }
      socklen_t addr_len = sizeof addr;
      if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                        &addr_len) < 0) {
        throw_errno("getsockname");
      }
      const int client = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (client < 0) throw_errno("socket");
      apply_buffer_sizes(client, config_);
      if (::connect(client, reinterpret_cast<sockaddr*>(&addr),
                    sizeof addr) < 0) {
        throw_errno("connect");
      }
      const int accepted = ::accept(listener, nullptr, nullptr);
      if (accepted < 0) throw_errno("accept");
      ::close(listener);
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      ::setsockopt(accepted, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      // Small-buffer meshes can still drop segments at the receive queue
      // when skb overhead overruns SO_RCVBUF (TCPRcvQDrop); the retransmit
      // that repairs a drop is then the channel's latency floor. Monitor
      // streams are exactly the "thin stream" the linear-timeout option
      // targets -- few packets in flight, latency-critical -- so keep the
      // retransmit clock flat instead of exponential, and on kernels that
      // support it clamp the RTO ceiling too. Both are best-effort.
      ::setsockopt(client, IPPROTO_TCP, TCP_THIN_LINEAR_TIMEOUTS, &one,
                   sizeof one);
      ::setsockopt(accepted, IPPROTO_TCP, TCP_THIN_LINEAR_TIMEOUTS, &one,
                   sizeof one);
#ifdef TCP_RTO_MAX_MS
      const unsigned rto_max_ms = 1000;  // kernel-enforced floor
      ::setsockopt(client, IPPROTO_TCP, TCP_RTO_MAX_MS, &rto_max_ms,
                   sizeof rto_max_ms);
      ::setsockopt(accepted, IPPROTO_TCP, TCP_RTO_MAX_MS, &rto_max_ms,
                   sizeof rto_max_ms);
#endif
      set_nonblocking(client);
      set_nonblocking(accepted);
      channel(i, j).fd = client;
      channel(j, i).fd = accepted;
    }
  }

  // Register every node's peer fds for reading and fill in channel owner
  // metadata (the sender side arms EPOLLOUT on the same fd when congested).
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      Channel& ch = channel(i, j);
      ch.owner_epoll = nodes_[static_cast<std::size_t>(i)]->epoll_fd;
      ch.peer = j;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u32 = static_cast<std::uint32_t>(j);
      if (::epoll_ctl(ch.owner_epoll, EPOLL_CTL_ADD, ch.fd, &ev) < 0) {
        throw_errno("epoll_ctl peer fd");
      }
      nodes_[static_cast<std::size_t>(i)]
          ->peer_open[static_cast<std::size_t>(j)] = true;
    }
  }
}

SocketRuntime::~SocketRuntime() {
  stop_.store(true);
  for (int i = 0; i < num_processes(); ++i) wake(i);
  threads_.clear();  // jthread joins
  for (auto& ch : channels_) {
    if (ch) close_if_open(ch->fd);
  }
  for (auto& node : nodes_) {
    close_if_open(node->event_fd);
    close_if_open(node->epoll_fd);
  }
}

std::vector<LocalState> SocketRuntime::initial_states() const {
  std::vector<LocalState> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node->process->state());
  return out;
}

double SocketRuntime::now() const {
  return std::chrono::duration<double>(
             Clock::now() - start_.load(std::memory_order_relaxed))
      .count();
}

void SocketRuntime::wake(int index) {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t r =
      ::write(nodes_[static_cast<std::size_t>(index)]->event_fd, &one,
              sizeof one);
}

void SocketRuntime::finish_one() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Lock-then-notify: run() checks the counter under the mutex, so the
    // notification cannot slip between its check and its wait.
    std::scoped_lock lock(quiesce_mutex_);
    quiesce_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void SocketRuntime::encode_record_locked(Channel& ch,
                                         const NetPayload& payload) {
  std::vector<std::uint8_t> rec(kRecordHeader, 0);
  rec[4] = kMonRecord;
  encode_payload_into(payload, rec);
  const std::size_t body = rec.size() - 4;  // type byte + payload bytes
  for (int i = 0; i < 4; ++i) {
    rec[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body >> (8 * i));
  }
  // Transport-truth accounting: TCP delivers every queued byte, so the
  // encoded length is the on-wire cost -- no size-walking here.
  wire_bytes_.fetch_add(rec.size(), std::memory_order_relaxed);
  wire_frames_.fetch_add(1, std::memory_order_relaxed);
  ch.queued_bytes += rec.size();
  ch.queue.push_back(std::move(rec));
}

void SocketRuntime::materialize_staging_locked(Channel& ch) {
  encode_record_locked(ch, *ch.staging);
  ch.staging.reset();
}

void SocketRuntime::flush_locked(Channel& ch) {
  bool blocked = false;
  while (!blocked) {
    if (ch.queue.empty()) {
      if (!ch.staging) break;
      materialize_staging_locked(ch);
    }
    std::vector<std::uint8_t>& front = ch.queue.front();
    while (ch.front_off < front.size()) {
      const ssize_t k =
          ::send(ch.fd, front.data() + ch.front_off,
                 front.size() - ch.front_off, MSG_NOSIGNAL);
      if (k >= 0) {
        if (static_cast<std::size_t>(k) < front.size() - ch.front_off) {
          partial_writes_.fetch_add(1, std::memory_order_relaxed);
        }
        ch.front_off += static_cast<std::size_t>(k);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        partial_writes_.fetch_add(1, std::memory_order_relaxed);
        blocked = true;
        break;
      }
      throw_errno("send");
    }
    if (!blocked) {
      ch.queued_bytes -= front.size();
      ch.front_off = 0;
      ch.queue.pop_front();
    }
  }
  // Keep epoll write-interest in sync with the queue state. epoll_ctl is
  // thread-safe; want_write is guarded by ch.mutex, which the caller holds.
  const bool need_write = !ch.queue.empty() || ch.staging != nullptr;
  if (need_write != ch.want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (need_write ? EPOLLOUT : 0u);
    ev.data.u32 = static_cast<std::uint32_t>(ch.peer);
    if (::epoll_ctl(ch.owner_epoll, EPOLL_CTL_MOD, ch.fd, &ev) == 0) {
      ch.want_write = need_write;
    }
  }
}

void SocketRuntime::enqueue_monitor(int from, int to,
                                    std::unique_ptr<NetPayload> payload) {
  Channel& ch = channel(from, to);
  std::scoped_lock lock(ch.mutex);
  if (payload->tag == PayloadFrame::kTag) {
    std::unique_ptr<PayloadFrame> frame(
        static_cast<PayloadFrame*>(payload.release()));
    if (frame->units.empty()) {
      finish_one();  // nothing to deliver; retire the message's credit
      return;
    }
    if (!config_.batch) {
      // Unbatched control posture: every unit crosses as its own record.
      // The frame's single work credit becomes one credit per record; add
      // the difference before any record can complete at the receiver.
      outstanding_.fetch_add(
          static_cast<std::int64_t>(frame->units.size()) - 1,
          std::memory_order_acq_rel);
      for (const auto& unit : frame->units) encode_record_locked(ch, *unit);
    } else if (ch.staging) {
      // Channel congested and a frame is already parked: merge (this is
      // the kTransit convoy on real congestion). The merged frame's bytes
      // are now owed by the staging frame's credit, so this one retires.
      for (auto& unit : frame->units) {
        ch.staging->units.push_back(std::move(unit));
      }
      coalesced_frames_.fetch_add(1, std::memory_order_relaxed);
      finish_one();
    } else if (!ch.queue.empty() || ch.queued_bytes >= config_.max_queue_bytes) {
      // Earlier bytes still queued: park instead of encoding, so later
      // frames can join and the queue stays bounded.
      ch.staging = std::move(frame);
    } else {
      encode_record_locked(ch, *frame);
    }
  } else {
    // Singleton payloads (tokens, terminations, channel envelopes) keep
    // FIFO order with frames: anything parked must hit the queue first.
    if (ch.staging) materialize_staging_locked(ch);
    encode_record_locked(ch, *payload);
  }
  flush_locked(ch);
}

void SocketRuntime::send(MonitorMessage msg) {
  send_perturbed(std::move(msg), DeliveryPerturbation{});
}

void SocketRuntime::send_perturbed(MonitorMessage msg,
                                   const DeliveryPerturbation& perturbation) {
  if (msg.from < 0 || msg.from >= num_processes() || msg.to < 0 ||
      msg.to >= num_processes() || !msg.payload) {
    throw std::out_of_range("SocketRuntime::send: bad message");
  }
  // Count the work unit before it becomes visible anywhere (credit-counting
  // quiescence, see header).
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (msg.from == msg.to) {
    // Self-delivery, possibly delayed (reliable-channel retransmit timers).
    // Nothing crosses the network; honored via the node's timer heap.
    Clock::time_point at = Clock::now();
    if (perturbation.extra_delay > 0.0) {
      at = advance_saturated(
          at, to_wall(perturbation.extra_delay, config_.time_scale));
    }
    Node& node = *nodes_[static_cast<std::size_t>(msg.to)];
    {
      std::scoped_lock lock(node.timer_mutex);
      node.timers.push(
          Timer{at, timer_seq_.fetch_add(1, std::memory_order_relaxed),
                std::move(msg)});
    }
    wake(msg.to);
    return;
  }
  // Cross-node: the transport is a real TCP stream, so there is no modeled
  // latency to perturb and per-channel FIFO is physical; extra_delay and
  // bypass_fifo are simulation concepts and are ignored here.
  monitor_sends_.fetch_add(1, std::memory_order_relaxed);
  enqueue_monitor(msg.from, msg.to, std::move(msg.payload));
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void SocketRuntime::record_event(int index, const Event& event) {
  program_events_.fetch_add(1, std::memory_order_relaxed);
  history_[static_cast<std::size_t>(index)].push_back(event);
  if (hooks_) hooks_->on_local_event(index, event, now());
}

void SocketRuntime::dispatch_record(int index, int peer,
                                    const std::vector<std::uint8_t>& rec) {
  Node& node = *nodes_[static_cast<std::size_t>(index)];
  if (rec.empty()) throw WireError("empty record");
  node.scratch.assign(rec.begin() + 1, rec.end());
  if (rec[0] == kAppRecord) {
    WireReader r(node.scratch);
    AppMessage msg;
    msg.from = static_cast<int>(r.u32());
    msg.to = index;
    msg.send_sn = r.u32();
    msg.vc = r.vc(nodes_.size());
    r.done();
    if (msg.from != peer) throw WireError("app record from wrong peer");
    const Event e = node.process->receive(msg, now());
    --node.receives_left;
    record_event(index, e);
    finish_one();
  } else if (rec[0] == kMonRecord) {
    auto payload = decode_payload(node.scratch, nodes_.size());
    monitor_deliveries_.fetch_add(1, std::memory_order_relaxed);
    if (hooks_) {
      hooks_->on_monitor_message(MonitorMessage{peer, index, std::move(payload)},
                                 now());
    }
    finish_one();
  } else {
    throw WireError("unknown record type");
  }
}

void SocketRuntime::read_peer(int index, int peer) {
  Node& node = *nodes_[static_cast<std::size_t>(index)];
  if (!node.peer_open[static_cast<std::size_t>(peer)]) return;
  const int fd = channel(index, peer).fd;
  FrameReassembler& ra = node.reassembly[static_cast<std::size_t>(peer)];
  std::uint8_t buf[65536];
  std::vector<std::uint8_t> rec;
  for (;;) {
    const ssize_t k = ::recv(fd, buf, sizeof buf, 0);
    if (k > 0) {
      ra.feed(buf, static_cast<std::size_t>(k));
      while (ra.next(&rec)) dispatch_record(index, peer, rec);
      continue;
    }
    if (k == 0) {
      // Orderly shutdown from the peer. Mid-record EOF means truncation --
      // surface it loudly (it cannot happen in a healthy run: sockets are
      // closed only after every node thread has joined).
      if (!stop_.load(std::memory_order_acquire) && ra.mid_record()) {
        std::fprintf(stderr,
                     "decmon: node %d: peer %d closed mid-record (%zu bytes "
                     "buffered)\n",
                     index, peer, ra.buffered());
      }
      node.peer_open[static_cast<std::size_t>(peer)] = false;
      ::epoll_ctl(node.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    throw_errno("recv");
  }
}

void SocketRuntime::broadcast_app(int index, const AppMessage& message) {
  // Encode the body once (identical for every destination: the receiver id
  // is implied by the stream) and enqueue a copy per peer.
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.u32(static_cast<std::uint32_t>(message.from));
  w.u32(message.send_sn);
  w.vc(message.vc);
  for (int to = 0; to < num_processes(); ++to) {
    if (to == index) continue;
    app_messages_.fetch_add(1, std::memory_order_relaxed);
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    Channel& ch = channel(index, to);
    std::scoped_lock lock(ch.mutex);
    std::vector<std::uint8_t> rec(kRecordHeader + body.size());
    const std::size_t len = body.size() + 1;  // type byte + body
    for (int i = 0; i < 4; ++i) {
      rec[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    }
    rec[4] = kAppRecord;
    std::memcpy(rec.data() + kRecordHeader, body.data(), body.size());
    app_bytes_.fetch_add(rec.size(), std::memory_order_relaxed);
    ch.queued_bytes += rec.size();
    ch.queue.push_back(std::move(rec));
    flush_locked(ch);
  }
}

// ---------------------------------------------------------------------------
// Node event loop + run()
// ---------------------------------------------------------------------------

void SocketRuntime::node_main(int index) {
  Node& node = *nodes_[static_cast<std::size_t>(index)];
  ProgramProcess& proc = *node.process;
  const Clock::time_point run_start = start_.load(std::memory_order_relaxed);

  bool announced_termination = false;
  // Action times derive from the *scheduled* time of the previous action
  // (not Clock::now() after it ran), so processing latency never compounds
  // into trace-time drift.
  Clock::time_point next_action =
      proc.has_next_action()
          ? advance_saturated(
                run_start, to_wall(proc.next_action_wait(), config_.time_scale))
          : Clock::time_point::max();

  epoll_event events[16];
  while (!stop_.load(std::memory_order_acquire)) {
    // 1. Deliver due timers (delayed self-sends).
    for (;;) {
      std::optional<MonitorMessage> due;
      {
        std::scoped_lock lock(node.timer_mutex);
        if (!node.timers.empty() && node.timers.top().at <= Clock::now()) {
          due = std::move(const_cast<Timer&>(node.timers.top()).msg);
          node.timers.pop();
        }
      }
      if (!due) break;
      monitor_deliveries_.fetch_add(1, std::memory_order_relaxed);
      if (hooks_) hooks_->on_monitor_message(std::move(*due), now());
      finish_one();
    }
    // 2. Execute a due program action.
    if (proc.has_next_action() && Clock::now() >= next_action) {
      ProgramProcess::ActionResult result = proc.execute_next_action(now());
      record_event(index, result.event);
      if (result.is_comm) broadcast_app(index, result.message);
      next_action = proc.has_next_action()
                        ? advance_saturated(next_action,
                                            to_wall(proc.next_action_wait(),
                                                    config_.time_scale))
                        : Clock::time_point::max();
      continue;  // more actions may already be due
    }
    // 3. Termination: the program's work unit ends after its hook, so
    // sends made by the hook are counted before the release.
    if (!announced_termination && !proc.has_next_action() &&
        node.receives_left == 0) {
      announced_termination = true;
      if (hooks_) hooks_->on_local_termination(index, now());
      finish_one();
    }
    // 4. Block on epoll until bytes arrive, a socket drains, a wakeup is
    // posted, or the earliest local deadline passes. The 50 ms cap is
    // insurance only -- every state change also posts a wakeup.
    Clock::time_point wake_at = next_action;
    {
      std::scoped_lock lock(node.timer_mutex);
      if (!node.timers.empty()) wake_at = std::min(wake_at, node.timers.top().at);
    }
    int timeout_ms = 50;
    const Clock::time_point wall = Clock::now();
    if (wake_at <= wall) {
      timeout_ms = 0;
    } else if (wake_at != Clock::time_point::max()) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          wake_at - wall)
                          .count() +
                      1;
      timeout_ms = static_cast<int>(std::clamp<long long>(ms, 0, 50));
    }
    const int nev = ::epoll_wait(node.epoll_fd, events, 16, timeout_ms);
    for (int e = 0; e < nev; ++e) {
      const std::uint32_t tag = events[e].data.u32;
      if (tag == kEventFdTag) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(node.event_fd, &drained, sizeof drained);
        continue;
      }
      const int peer = static_cast<int>(tag);
      if (events[e].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        read_peer(index, peer);
      }
      if (events[e].events & EPOLLOUT) {
        Channel& ch = channel(index, peer);
        std::scoped_lock lock(ch.mutex);
        flush_locked(ch);
      }
    }
  }
}

void SocketRuntime::run() {
  start_.store(Clock::now(), std::memory_order_relaxed);
  stop_.store(false);
  // One work unit per program; pre-run sends were already counted by
  // send_perturbed.
  outstanding_.fetch_add(num_processes(), std::memory_order_acq_rel);
  threads_.clear();
  threads_.reserve(static_cast<std::size_t>(num_processes()));
  for (int i = 0; i < num_processes(); ++i) {
    history_[static_cast<std::size_t>(i)].clear();
    history_[static_cast<std::size_t>(i)].push_back(
        nodes_[static_cast<std::size_t>(i)]->process->initial_event());
    threads_.emplace_back([this, i] { node_main(i); });
  }
  {
    std::unique_lock lock(quiesce_mutex_);
    quiesce_cv_.wait(lock, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  stop_.store(true);
  for (int i = 0; i < num_processes(); ++i) wake(i);
  threads_.clear();  // join
}

}  // namespace decmon
