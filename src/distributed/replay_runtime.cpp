#include "decmon/distributed/replay_runtime.hpp"

#include <utility>
#include <vector>

namespace decmon {

void ReplayRuntime::send_perturbed(MonitorMessage msg,
                                   const DeliveryPerturbation& perturbation) {
  Channel& ch = channels_[{msg.from, msg.to}];
  InFlight item{std::move(msg), t_ + perturbation.extra_delay};
  if (perturbation.bypass_fifo) {
    ch.loose.push_back(std::move(item));
  } else {
    ch.fifo.push_back(std::move(item));
  }
}

bool ReplayRuntime::channels_empty() const {
  for (const auto& [key, ch] : channels_) {
    if (!ch.fifo.empty() || !ch.loose.empty()) return false;
  }
  return true;
}

bool ReplayRuntime::deliver_one(MonitorHooks& hooks, std::mt19937_64& rng) {
  // Candidates: each channel's FIFO front (later FIFO messages wait behind
  // it, even when ripe -- head-of-line order is the channel contract) plus
  // every ripe loose message.
  struct Candidate {
    Channel* ch;
    std::size_t loose_index;  ///< SIZE_MAX = the FIFO front
  };
  std::vector<Candidate> ready;
  for (auto& [key, ch] : channels_) {
    if (!ch.fifo.empty() && ch.fifo.front().ready_at <= t_) {
      ready.push_back({&ch, static_cast<std::size_t>(-1)});
    }
    for (std::size_t i = 0; i < ch.loose.size(); ++i) {
      if (ch.loose[i].ready_at <= t_) ready.push_back({&ch, i});
    }
  }
  if (ready.empty()) return false;
  const Candidate pick = ready[rng() % ready.size()];
  MonitorMessage msg;
  if (pick.loose_index == static_cast<std::size_t>(-1)) {
    msg = std::move(pick.ch->fifo.front().msg);
    pick.ch->fifo.pop_front();
  } else {
    msg = std::move(pick.ch->loose[pick.loose_index].msg);
    pick.ch->loose.erase(pick.ch->loose.begin() +
                         static_cast<std::ptrdiff_t>(pick.loose_index));
  }
  ++deliveries_;
  hooks.on_monitor_message(std::move(msg), t_);
  return true;
}

void ReplayRuntime::run(const Computation& comp, MonitorHooks& hooks,
                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int n = comp.num_processes();
  std::vector<std::uint32_t> cursor(static_cast<std::size_t>(n), 1);
  std::vector<char> terminated(static_cast<std::size_t>(n), 0);

  auto events_left = [&] {
    for (int p = 0; p < n; ++p) {
      if (cursor[static_cast<std::size_t>(p)] <= comp.num_events(p) ||
          !terminated[static_cast<std::size_t>(p)]) {
        return true;
      }
    }
    return false;
  };

  while (events_left() || !channels_empty()) {
    t_ += 1.0;
    const bool try_msg =
        !channels_empty() && (rng() % 2 == 0 || !events_left());
    if (try_msg) {
      if (deliver_one(hooks, rng)) continue;
      // Nothing has ripened: when only delayed messages remain, advancing
      // t_ (top of the loop) is what eventually makes them deliverable.
      if (!events_left()) continue;
    }
    if (!events_left()) continue;
    std::vector<int> ready;
    for (int p = 0; p < n; ++p) {
      if (cursor[static_cast<std::size_t>(p)] <= comp.num_events(p) ||
          !terminated[static_cast<std::size_t>(p)]) {
        ready.push_back(p);
      }
    }
    const int p = ready[rng() % ready.size()];
    if (cursor[static_cast<std::size_t>(p)] <= comp.num_events(p)) {
      hooks.on_local_event(
          p, comp.event(p, cursor[static_cast<std::size_t>(p)]++), t_);
    } else {
      terminated[static_cast<std::size_t>(p)] = 1;
      hooks.on_local_termination(p, t_);
    }
  }
}

}  // namespace decmon
