#include "decmon/distributed/replay_runtime.hpp"

#include <vector>

namespace decmon {

bool ReplayRuntime::channels_empty() const {
  for (const auto& [key, q] : channels_) {
    if (!q.empty()) return false;
  }
  return true;
}

void ReplayRuntime::deliver_one(MonitorHooks& hooks, std::mt19937_64& rng) {
  std::vector<std::pair<int, int>> nonempty;
  for (const auto& [key, q] : channels_) {
    if (!q.empty()) nonempty.push_back(key);
  }
  const auto key = nonempty[rng() % nonempty.size()];
  MonitorMessage msg = std::move(channels_[key].front());
  channels_[key].pop_front();
  ++deliveries_;
  hooks.on_monitor_message(std::move(msg), t_);
}

void ReplayRuntime::run(const Computation& comp, MonitorHooks& hooks,
                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int n = comp.num_processes();
  std::vector<std::uint32_t> cursor(static_cast<std::size_t>(n), 1);
  std::vector<char> terminated(static_cast<std::size_t>(n), 0);

  auto events_left = [&] {
    for (int p = 0; p < n; ++p) {
      if (cursor[static_cast<std::size_t>(p)] <= comp.num_events(p) ||
          !terminated[static_cast<std::size_t>(p)]) {
        return true;
      }
    }
    return false;
  };

  while (events_left() || !channels_empty()) {
    t_ += 1.0;
    const bool deliver_msg =
        !channels_empty() && (rng() % 2 == 0 || !events_left());
    if (deliver_msg) {
      deliver_one(hooks, rng);
      continue;
    }
    std::vector<int> ready;
    for (int p = 0; p < n; ++p) {
      if (cursor[static_cast<std::size_t>(p)] <= comp.num_events(p) ||
          !terminated[static_cast<std::size_t>(p)]) {
        ready.push_back(p);
      }
    }
    const int p = ready[rng() % ready.size()];
    if (cursor[static_cast<std::size_t>(p)] <= comp.num_events(p)) {
      hooks.on_local_event(
          p, comp.event(p, cursor[static_cast<std::size_t>(p)]++), t_);
    } else {
      terminated[static_cast<std::size_t>(p)] = 1;
      hooks.on_local_termination(p, t_);
    }
  }
}

}  // namespace decmon
