#include "decmon/distributed/process.hpp"

#include <stdexcept>

namespace decmon {

ProgramProcess::ProgramProcess(int index, int num_processes,
                               ProcessTrace trace,
                               const AtomRegistry* registry)
    : index_(index),
      trace_(std::move(trace)),
      registry_(registry),
      vc_(static_cast<std::size_t>(num_processes)),
      state_(trace_.initial) {}

Event ProgramProcess::make_event(EventType type, double now) const {
  Event e;
  e.type = type;
  e.process = index_;
  e.sn = sn_;
  e.vc = vc_;
  e.state = state_;
  e.letter = registry_ ? registry_->evaluate_local(index_, state_) : 0;
  e.time = now;
  return e;
}

Event ProgramProcess::initial_event() const {
  if (sn_ != 0) {
    throw std::logic_error("initial_event called after execution started");
  }
  return make_event(EventType::kInitial, 0.0);
}

double ProgramProcess::next_action_wait() const {
  if (!has_next_action()) {
    throw std::logic_error("next_action_wait: trace exhausted");
  }
  return trace_.actions[next_action_].wait;
}

ProgramProcess::ActionResult ProgramProcess::execute_next_action(double now) {
  if (!has_next_action()) {
    throw std::logic_error("execute_next_action: trace exhausted");
  }
  const TraceAction& action = trace_.actions[next_action_++];
  ActionResult result;
  ++sn_;
  vc_.tick(static_cast<std::size_t>(index_));
  if (action.kind == TraceAction::Kind::kInternal) {
    state_ = action.state;
    result.event = make_event(EventType::kInternal, now);
  } else {
    // One broadcast = one send event; the same clock is piggybacked on every
    // copy (send events do not change the local state, §2.1).
    result.event = make_event(EventType::kSend, now);
    result.is_comm = true;
    result.message.from = index_;
    result.message.vc = vc_;
    result.message.send_sn = sn_;
  }
  return result;
}

Event ProgramProcess::receive(const AppMessage& msg, double now) {
  vc_.merge(msg.vc);
  ++sn_;
  vc_.tick(static_cast<std::size_t>(index_));
  return make_event(EventType::kReceive, now);
}

}  // namespace decmon
