#include "decmon/distributed/faulty_network.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "decmon/util/rng.hpp"

namespace decmon {
namespace {

std::uint64_t splitmix_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::string FaultConfig::to_string() const {
  std::ostringstream os;
  os << "delay_prob " << delay_prob << " delay_mu " << delay_mu
     << " delay_sigma " << delay_sigma << " reorder_prob " << reorder_prob
     << " dup_prob " << dup_prob << " drop_prob " << drop_prob
     << " max_drops " << max_drops << " redelivery_delay " << redelivery_delay
     << " lose_prob " << lose_prob << " lose_dropped " << (lose_dropped ? 1 : 0)
     << " seed " << seed;
  return os.str();
}

FaultyNetwork::FaultyNetwork(MonitorNetwork* inner, int num_processes,
                             FaultConfig config)
    : inner_(inner), n_(num_processes), config_(config) {
  if (!inner) throw std::invalid_argument("FaultyNetwork: null inner network");
  channels_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
  for (int from = 0; from < n_; ++from) {
    for (int to = 0; to < n_; ++to) {
      channels_[static_cast<std::size_t>(from * n_ + to)].rng_state =
          derive_seed(config_.seed,
                      0xFA17ull + static_cast<std::uint64_t>(from * n_ + to));
    }
  }
}

FaultyNetwork::Channel& FaultyNetwork::channel(int from, int to) {
  if (from < 0 || from >= n_ || to < 0 || to >= n_) {
    throw std::out_of_range("FaultyNetwork: bad channel endpoint");
  }
  return channels_[static_cast<std::size_t>(from * n_ + to)];
}

double FaultyNetwork::uniform(Channel& ch) {
  return static_cast<double>(splitmix_next(ch.rng_state) >> 11) * 0x1.0p-53;
}

double FaultyNetwork::spike(Channel& ch) {
  // Box-Muller from the channel's own stream (std::normal_distribution
  // consumes an implementation-defined number of draws, which would make
  // the stream layout compiler-dependent; the repro format must not be).
  const double u1 = uniform(ch);
  const double u2 = uniform(ch);
  const double z =
      std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(6.283185307179586 * u2);
  const double x = config_.delay_mu + config_.delay_sigma * z;
  return x > 0.0 ? x : 0.0;
}

void FaultyNetwork::send_perturbed(MonitorMessage msg,
                                   const DeliveryPerturbation& perturbation) {
  // Compose: already-perturbed messages (e.g. from a stacked decorator)
  // pick up this layer's faults on top.
  if (msg.from == msg.to || !config_.any_faults()) {
    inner_->send_perturbed(std::move(msg), perturbation);
    return;
  }
  DeliveryPerturbation p = perturbation;
  std::unique_ptr<NetPayload> dup_copy;
  DeliveryPerturbation dup_p;
  {
    // Decision draws and stats under the lock (node threads send
    // concurrently under ThreadRuntime); inner sends happen after release.
    std::lock_guard<std::mutex> lock(mu_);
    Channel& ch = channel(msg.from, msg.to);
    ++stats_.messages;

    // The five decision rolls happen unconditionally and in a fixed order;
    // magnitude draws follow only for faults that fired. The stream is a
    // pure function of {seed, config, per-channel message ordinal}.
    const double roll_drop = uniform(ch);
    const double roll_delay = uniform(ch);
    const double roll_reorder = uniform(ch);
    const double roll_dup = uniform(ch);
    const double roll_lose = uniform(ch);

    if (roll_lose < config_.lose_prob) {
      // True loss: the message dies here, with no redelivery. Only a
      // reliable channel stacked above can recover it.
      ++stats_.lost;
      return;
    }
    if (roll_drop < config_.drop_prob) {
      const int drops =
          1 + static_cast<int>(splitmix_next(ch.rng_state) %
                               static_cast<std::uint64_t>(
                                   config_.max_drops > 0 ? config_.max_drops
                                                         : 1));
      stats_.dropped += static_cast<std::uint64_t>(drops);
      if (config_.lose_dropped) {
        // Fault-model violation (self-test only): swallow the message.
        ++stats_.lost;
        return;
      }
      p.extra_delay += drops * config_.redelivery_delay;
      p.bypass_fifo = true;  // retransmissions do not hold the channel
    }
    if (roll_delay < config_.delay_prob) {
      ++stats_.delay_spikes;
      p.extra_delay += spike(ch);
    }
    if (roll_reorder < config_.reorder_prob) {
      ++stats_.reordered;
      p.bypass_fifo = true;
    }
    if (roll_dup < config_.dup_prob && msg.payload) {
      if ((dup_copy = msg.payload->clone())) {
        ++stats_.duplicated;
        dup_p.extra_delay = p.extra_delay + spike(ch);
        dup_p.bypass_fifo = true;
      }
    }
  }
  if (dup_copy) {
    inner_->send_perturbed(
        MonitorMessage{msg.from, msg.to, std::move(dup_copy)}, dup_p);
  }
  inner_->send_perturbed(std::move(msg), p);
}

void FaultyNetwork::send(MonitorMessage msg) {
  send_perturbed(std::move(msg), DeliveryPerturbation{});
}

}  // namespace decmon
