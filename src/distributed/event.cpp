#include "decmon/distributed/event.hpp"

namespace decmon {

std::string to_string(EventType t) {
  switch (t) {
    case EventType::kInitial: return "initial";
    case EventType::kInternal: return "internal";
    case EventType::kSend: return "send";
    case EventType::kReceive: return "receive";
  }
  return "?";
}

}  // namespace decmon
