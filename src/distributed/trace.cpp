#include "decmon/distributed/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "decmon/util/rng.hpp"
#include "decmon/util/strings.hpp"

namespace decmon {

int ProcessTrace::count(TraceAction::Kind kind) const {
  int n = 0;
  for (const TraceAction& a : actions) {
    if (a.kind == kind) ++n;
  }
  return n;
}

int SystemTrace::expected_receives(int to) const {
  int n = 0;
  for (int p = 0; p < num_processes(); ++p) {
    if (p == to) continue;
    n += procs[static_cast<std::size_t>(p)].count(TraceAction::Kind::kComm);
  }
  return n;
}

int SystemTrace::total_events() const {
  const int n = num_processes();
  int total = 0;
  for (const ProcessTrace& pt : procs) {
    total += pt.count(TraceAction::Kind::kInternal);
    total += pt.count(TraceAction::Kind::kComm) * n;  // 1 send + n-1 receives
  }
  return total;
}

SystemTrace generate_trace(const TraceParams& params) {
  if (params.num_processes < 1) {
    throw std::invalid_argument("generate_trace: need at least one process");
  }
  SystemTrace trace;
  trace.procs.resize(static_cast<std::size_t>(params.num_processes));
  for (int p = 0; p < params.num_processes; ++p) {
    ProcessTrace& pt = trace.procs[static_cast<std::size_t>(p)];
    pt.initial.assign(static_cast<std::size_t>(params.num_variables),
                      params.initial_true ? 1 : 0);

    const std::uint64_t seed =
        derive_seed(params.seed, static_cast<std::uint64_t>(p));
    NormalWait evt_wait(params.evt_mu, params.evt_sigma, derive_seed(seed, 1),
                        /*min=*/0.01);
    NormalWait comm_wait(params.comm_mu, params.comm_sigma,
                         derive_seed(seed, 2), /*min=*/0.01);
    std::mt19937_64 flips(derive_seed(seed, 3));
    std::uniform_real_distribution<double> unit(0.0, 1.0);

    // Two independent wait-time streams (internal / comm) merged by time.
    struct Timed {
      double at;
      TraceAction action;
    };
    std::vector<Timed> timeline;
    double t = 0.0;
    LocalState state = pt.initial;
    for (int e = 0; e < params.internal_events; ++e) {
      const double wait = evt_wait.sample();
      t += wait;
      for (auto& v : state) {
        v = unit(flips) < params.true_bias ? 1 : 0;
      }
      TraceAction a;
      a.kind = TraceAction::Kind::kInternal;
      a.state = state;
      timeline.push_back({t, std::move(a)});
    }
    const double end_time = t;
    if (params.comm_enabled && params.num_processes > 1) {
      double ct = comm_wait.sample();
      while (ct < end_time) {
        TraceAction a;
        a.kind = TraceAction::Kind::kComm;
        timeline.push_back({ct, std::move(a)});
        ct += comm_wait.sample();
      }
    }
    std::stable_sort(timeline.begin(), timeline.end(),
                     [](const Timed& a, const Timed& b) { return a.at < b.at; });
    double prev = 0.0;
    for (Timed& item : timeline) {
      item.action.wait = item.at - prev;
      prev = item.at;
      pt.actions.push_back(std::move(item.action));
    }
  }
  return trace;
}

void force_final_all_true(SystemTrace& trace) {
  for (ProcessTrace& pt : trace.procs) {
    for (auto it = pt.actions.rbegin(); it != pt.actions.rend(); ++it) {
      if (it->kind == TraceAction::Kind::kInternal) {
        for (auto& v : it->state) v = 1;
        break;
      }
    }
  }
}

std::string to_text(const SystemTrace& trace) {
  std::ostringstream os;
  os << "processes " << trace.num_processes() << "\n";
  for (int p = 0; p < trace.num_processes(); ++p) {
    const ProcessTrace& pt = trace.procs[static_cast<std::size_t>(p)];
    os << "process " << p << " vars " << pt.initial.size() << "\n";
    os << "init";
    for (auto v : pt.initial) os << ' ' << v;
    os << "\n";
    for (const TraceAction& a : pt.actions) {
      if (a.kind == TraceAction::Kind::kComm) {
        os << "comm " << a.wait << "\n";
      } else {
        os << "internal " << a.wait;
        for (auto v : a.state) os << ' ' << v;
        os << "\n";
      }
    }
    os << "end\n";
  }
  return os.str();
}

SystemTrace trace_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string word;
  auto expect = [&](const std::string& what) {
    if (!(is >> word) || word != what) {
      throw std::runtime_error("trace_from_text: expected '" + what +
                               "', got '" + word + "'");
    }
  };
  expect("processes");
  int n = 0;
  if (!(is >> n) || n < 1) {
    throw std::runtime_error("trace_from_text: bad process count");
  }
  SystemTrace trace;
  trace.procs.resize(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    expect("process");
    int idx = -1;
    is >> idx;
    if (idx != p) throw std::runtime_error("trace_from_text: bad process id");
    expect("vars");
    std::size_t nvars = 0;
    is >> nvars;
    ProcessTrace& pt = trace.procs[static_cast<std::size_t>(p)];
    expect("init");
    pt.initial.resize(nvars);
    for (auto& v : pt.initial) is >> v;
    while (is >> word && word != "end") {
      TraceAction a;
      if (word == "comm") {
        a.kind = TraceAction::Kind::kComm;
        is >> a.wait;
      } else if (word == "internal") {
        a.kind = TraceAction::Kind::kInternal;
        is >> a.wait;
        a.state.resize(nvars);
        for (auto& v : a.state) is >> v;
      } else {
        throw std::runtime_error("trace_from_text: unknown action '" + word +
                                 "'");
      }
      if (!is) throw std::runtime_error("trace_from_text: truncated action");
      pt.actions.push_back(std::move(a));
    }
    if (word != "end") throw std::runtime_error("trace_from_text: missing end");
  }
  return trace;
}

std::ostream& operator<<(std::ostream& os, const SystemTrace& trace) {
  return os << to_text(trace);
}

}  // namespace decmon
