#include "decmon/lattice/computation.hpp"

#include <cassert>
#include <stdexcept>

namespace decmon {

Computation::Computation(std::vector<std::vector<Event>> events)
    : events_(std::move(events)) {
  for (std::size_t p = 0; p < events_.size(); ++p) {
    if (events_[p].empty()) {
      throw std::invalid_argument(
          "Computation: every process needs the initial pseudo-event");
    }
    for (std::size_t sn = 0; sn < events_[p].size(); ++sn) {
      const Event& e = events_[p][sn];
      if (e.sn != sn || e.process != static_cast<int>(p)) {
        throw std::invalid_argument("Computation: bad event indexing");
      }
      if (e.vc.size() != events_.size()) {
        throw std::invalid_argument("Computation: bad vector clock width");
      }
    }
  }
}

std::uint64_t Computation::total_events() const {
  std::uint64_t total = 0;
  for (int p = 0; p < num_processes(); ++p) total += num_events(p);
  return total;
}

Computation::Cut Computation::top() const {
  Cut cut(static_cast<std::size_t>(num_processes()));
  for (int p = 0; p < num_processes(); ++p) {
    cut[static_cast<std::size_t>(p)] = num_events(p);
  }
  return cut;
}

bool Computation::consistent(const Cut& cut) const {
  const int n = num_processes();
  for (int i = 0; i < n; ++i) {
    const Event& e = event(i, cut[static_cast<std::size_t>(i)]);
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      if (e.vc[static_cast<std::size_t>(j)] > cut[static_cast<std::size_t>(j)]) {
        return false;
      }
    }
  }
  return true;
}

bool Computation::can_advance(const Cut& cut, int p) const {
  const std::uint32_t next = cut[static_cast<std::size_t>(p)] + 1;
  if (next > num_events(p)) return false;
  const Event& e = event(p, next);
  // The new event must not depend on anything outside the cut.
  for (int j = 0; j < num_processes(); ++j) {
    if (j == p) continue;
    if (e.vc[static_cast<std::size_t>(j)] > cut[static_cast<std::size_t>(j)]) {
      return false;
    }
  }
  return true;
}

AtomSet Computation::letter(const Cut& cut) const {
  AtomSet a = 0;
  for (int p = 0; p < num_processes(); ++p) {
    a |= event(p, cut[static_cast<std::size_t>(p)]).letter;
  }
  return a;
}

GlobalState Computation::global_state(const Cut& cut) const {
  GlobalState g;
  g.reserve(static_cast<std::size_t>(num_processes()));
  for (int p = 0; p < num_processes(); ++p) {
    g.push_back(event(p, cut[static_cast<std::size_t>(p)]).state);
  }
  return g;
}

ComputationBuilder::ComputationBuilder(int num_processes,
                                       const AtomRegistry* registry)
    : registry_(registry),
      events_(static_cast<std::size_t>(num_processes)),
      clocks_(static_cast<std::size_t>(num_processes),
              VectorClock(static_cast<std::size_t>(num_processes))),
      states_(static_cast<std::size_t>(num_processes)) {
  for (int p = 0; p < num_processes; ++p) {
    events_[static_cast<std::size_t>(p)].push_back(
        make_event(p, EventType::kInitial));
  }
}

Event ComputationBuilder::make_event(int p, EventType type) {
  Event e;
  e.type = type;
  e.process = p;
  e.sn = static_cast<std::uint32_t>(events_[static_cast<std::size_t>(p)].size());
  if (type == EventType::kInitial) e.sn = 0;
  e.vc = clocks_[static_cast<std::size_t>(p)];
  e.state = states_[static_cast<std::size_t>(p)];
  e.letter =
      registry_ ? registry_->evaluate_local(p, e.state) : 0;
  return e;
}

void ComputationBuilder::set_initial(int p, LocalState state) {
  auto& evs = events_[static_cast<std::size_t>(p)];
  if (evs.size() != 1) {
    throw std::logic_error("set_initial: events already recorded");
  }
  states_[static_cast<std::size_t>(p)] = std::move(state);
  evs[0] = make_event(p, EventType::kInitial);
  evs[0].sn = 0;
}

std::uint32_t ComputationBuilder::internal(int p, LocalState state) {
  states_[static_cast<std::size_t>(p)] = std::move(state);
  clocks_[static_cast<std::size_t>(p)].tick(static_cast<std::size_t>(p));
  Event e = make_event(p, EventType::kInternal);
  events_[static_cast<std::size_t>(p)].push_back(e);
  return e.sn;
}

int ComputationBuilder::send(int from) {
  clocks_[static_cast<std::size_t>(from)].tick(static_cast<std::size_t>(from));
  events_[static_cast<std::size_t>(from)].push_back(
      make_event(from, EventType::kSend));
  messages_.push_back(clocks_[static_cast<std::size_t>(from)]);
  return static_cast<int>(messages_.size()) - 1;
}

std::uint32_t ComputationBuilder::receive(int to, int message) {
  clocks_[static_cast<std::size_t>(to)].merge(
      messages_.at(static_cast<std::size_t>(message)));
  clocks_[static_cast<std::size_t>(to)].tick(static_cast<std::size_t>(to));
  Event e = make_event(to, EventType::kReceive);
  events_[static_cast<std::size_t>(to)].push_back(e);
  return e.sn;
}

Computation ComputationBuilder::build() const { return Computation(events_); }

}  // namespace decmon
