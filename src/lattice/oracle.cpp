#include "decmon/lattice/oracle.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace decmon {
namespace {

struct CutHash {
  std::size_t operator()(const Computation::Cut& c) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (std::uint32_t x : c) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

OracleResult oracle_evaluate(const Computation& comp,
                             const MonitorAutomaton& monitor,
                             std::size_t max_nodes) {
  if (monitor.num_states() > 64) {
    throw std::invalid_argument("oracle_evaluate: > 64 automaton states");
  }
  const int n = comp.num_processes();

  // states[cut] = bitmask of automaton states reachable at the cut.
  std::unordered_map<Computation::Cut, std::uint64_t, CutHash> states;
  std::unordered_map<Computation::Cut, char, CutHash> pivot;

  // BFS in |cut| layers: every edge advances exactly one event, so a layer
  // is fully settled before its successors are expanded.
  std::vector<Computation::Cut> layer{comp.bottom()};
  {
    const int q0 = monitor.initial_state();
    auto first = monitor.step(q0, comp.letter(comp.bottom()));
    if (!first) {
      throw std::logic_error("oracle_evaluate: incomplete automaton");
    }
    states[comp.bottom()] = std::uint64_t{1} << *first;
    pivot[comp.bottom()] = (*first != q0) ? 1 : 0;
  }

  OracleResult result;
  const Computation::Cut top = comp.top();
  while (!layer.empty()) {
    std::vector<Computation::Cut> next_layer;
    for (const Computation::Cut& cut : layer) {
      const std::uint64_t mask = states.at(cut);
      for (int p = 0; p < n; ++p) {
        if (!comp.can_advance(cut, p)) continue;
        Computation::Cut succ = cut;
        ++succ[static_cast<std::size_t>(p)];
        const AtomSet letter = comp.letter(succ);
        std::uint64_t succ_mask = 0;
        bool changes_state = false;
        for (int q = 0; q < monitor.num_states(); ++q) {
          if (!(mask & (std::uint64_t{1} << q))) continue;
          auto t = monitor.step(q, letter);
          if (!t) {
            throw std::logic_error("oracle_evaluate: incomplete automaton");
          }
          succ_mask |= std::uint64_t{1} << *t;
          if (*t != q) changes_state = true;
        }
        auto it = states.find(succ);
        if (it == states.end()) {
          if (states.size() >= max_nodes) {
            throw std::length_error("oracle_evaluate: lattice too large");
          }
          states.emplace(succ, succ_mask);
          pivot[succ] = changes_state ? 1 : 0;
          next_layer.push_back(std::move(succ));
        } else {
          it->second |= succ_mask;
          if (changes_state) pivot[succ] = 1;
        }
      }
    }
    layer = std::move(next_layer);
  }

  result.lattice_nodes = states.size();
  for (const auto& [cut, is_pivot] : pivot) {
    if (is_pivot) ++result.pivot_states;
  }
  const std::uint64_t final_mask = states.at(top);
  for (int q = 0; q < monitor.num_states(); ++q) {
    if (final_mask & (std::uint64_t{1} << q)) {
      result.final_states.insert(q);
      result.verdicts.insert(monitor.verdict(q));
    }
  }
  return result;
}

}  // namespace decmon
