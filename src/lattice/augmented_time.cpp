#include "decmon/lattice/augmented_time.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace decmon {
namespace {

struct CutHash {
  std::size_t operator()(const Computation::Cut& c) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (std::uint32_t x : c) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

bool TimedComputation::can_advance(const Computation::Cut& cut, int p) const {
  if (!comp_->can_advance(cut, p)) return false;
  const Event& e =
      comp_->event(p, cut[static_cast<std::size_t>(p)] + 1);
  // Refinement: every event that certainly happened before `e` (timestamp
  // more than epsilon older) must already be inside the cut.
  for (int j = 0; j < comp_->num_processes(); ++j) {
    if (j == p) continue;
    const std::uint32_t next = cut[static_cast<std::size_t>(j)] + 1;
    if (next > comp_->num_events(j)) continue;
    const Event& f = comp_->event(j, next);
    if (f.time + epsilon_ < e.time) return false;
  }
  return true;
}

std::uint64_t TimedComputation::count_cuts(std::size_t max_nodes) const {
  std::unordered_map<Computation::Cut, char, CutHash> seen;
  std::vector<Computation::Cut> work{comp_->bottom()};
  seen.emplace(comp_->bottom(), 1);
  while (!work.empty()) {
    Computation::Cut cut = std::move(work.back());
    work.pop_back();
    for (int p = 0; p < comp_->num_processes(); ++p) {
      if (!can_advance(cut, p)) continue;
      Computation::Cut succ = cut;
      ++succ[static_cast<std::size_t>(p)];
      if (seen.emplace(succ, 1).second) {
        if (seen.size() > max_nodes) {
          throw std::length_error("TimedComputation: too many cuts");
        }
        work.push_back(std::move(succ));
      }
    }
  }
  return seen.size();
}

OracleResult oracle_evaluate_timed(const TimedComputation& timed,
                                   const MonitorAutomaton& monitor,
                                   std::size_t max_nodes) {
  const Computation& comp = timed.base();
  if (monitor.num_states() > 64) {
    throw std::invalid_argument("oracle_evaluate_timed: > 64 states");
  }
  const int n = comp.num_processes();
  std::unordered_map<Computation::Cut, std::uint64_t, CutHash> states;
  std::unordered_map<Computation::Cut, char, CutHash> pivot;

  std::vector<Computation::Cut> layer{comp.bottom()};
  {
    const int q0 = monitor.initial_state();
    auto first = monitor.step(q0, comp.letter(comp.bottom()));
    if (!first) {
      throw std::logic_error("oracle_evaluate_timed: incomplete automaton");
    }
    states[comp.bottom()] = std::uint64_t{1} << *first;
    pivot[comp.bottom()] = (*first != q0) ? 1 : 0;
  }

  OracleResult result;
  while (!layer.empty()) {
    std::vector<Computation::Cut> next_layer;
    for (const Computation::Cut& cut : layer) {
      const std::uint64_t mask = states.at(cut);
      for (int p = 0; p < n; ++p) {
        if (!timed.can_advance(cut, p)) continue;
        Computation::Cut succ = cut;
        ++succ[static_cast<std::size_t>(p)];
        const AtomSet letter = comp.letter(succ);
        std::uint64_t succ_mask = 0;
        bool changes_state = false;
        for (int q = 0; q < monitor.num_states(); ++q) {
          if (!(mask & (std::uint64_t{1} << q))) continue;
          auto t = monitor.step(q, letter);
          if (!t) {
            throw std::logic_error(
                "oracle_evaluate_timed: incomplete automaton");
          }
          succ_mask |= std::uint64_t{1} << *t;
          if (*t != q) changes_state = true;
        }
        auto it = states.find(succ);
        if (it == states.end()) {
          if (states.size() >= max_nodes) {
            throw std::length_error("oracle_evaluate_timed: too large");
          }
          states.emplace(succ, succ_mask);
          pivot[succ] = changes_state ? 1 : 0;
          next_layer.push_back(std::move(succ));
        } else {
          it->second |= succ_mask;
          if (changes_state) pivot[succ] = 1;
        }
      }
    }
    layer = std::move(next_layer);
  }

  result.lattice_nodes = states.size();
  for (const auto& [cut, is_pivot] : pivot) {
    if (is_pivot) ++result.pivot_states;
  }
  auto top_it = states.find(comp.top());
  if (top_it == states.end()) {
    // Timestamps that contradict happened-before (possible in hand-edited
    // logs) can wedge the refined order.
    throw std::logic_error(
        "oracle_evaluate_timed: top cut unreachable; timestamps must respect "
        "happened-before");
  }
  const std::uint64_t final_mask = top_it->second;
  for (int q = 0; q < monitor.num_states(); ++q) {
    if (final_mask & (std::uint64_t{1} << q)) {
      result.final_states.insert(q);
      result.verdicts.insert(monitor.verdict(q));
    }
  }
  return result;
}

}  // namespace decmon
