#include "decmon/lattice/slicer.hpp"

namespace decmon {

Computation::Cut consistent_closure(const Computation& comp,
                                    Computation::Cut cut) {
  const int n = comp.num_processes();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      const Event& e = comp.event(i, cut[static_cast<std::size_t>(i)]);
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        if (e.vc[static_cast<std::size_t>(j)] >
            cut[static_cast<std::size_t>(j)]) {
          cut[static_cast<std::size_t>(j)] = e.vc[static_cast<std::size_t>(j)];
          changed = true;
        }
      }
    }
  }
  return cut;
}

std::optional<Computation::Cut> least_satisfying_cut(
    const Computation& comp, const Cube& pred, const AtomRegistry& registry,
    const Computation::Cut& from) {
  const int n = comp.num_processes();
  Computation::Cut cut = consistent_closure(comp, from);
  while (true) {
    // Find a forbidding process: one whose frontier state violates its own
    // literals of the predicate.
    int forbidding = -1;
    for (int p = 0; p < n; ++p) {
      const Event& e = comp.event(p, cut[static_cast<std::size_t>(p)]);
      if (!locally_satisfied(pred, e.letter, registry.owned_mask(p))) {
        forbidding = p;
        break;
      }
    }
    if (forbidding < 0) return cut;  // all conjuncts hold at a consistent cut
    if (cut[static_cast<std::size_t>(forbidding)] >=
        comp.num_events(forbidding)) {
      return std::nullopt;  // process exhausted without satisfying
    }
    ++cut[static_cast<std::size_t>(forbidding)];
    cut = consistent_closure(comp, cut);
  }
}

}  // namespace decmon
