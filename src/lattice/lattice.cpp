#include "decmon/lattice/lattice.hpp"

#include <deque>
#include <stdexcept>

namespace decmon {

Lattice Lattice::build(const Computation& comp, std::size_t max_nodes) {
  Lattice lat;
  const int n = comp.num_processes();
  auto intern = [&](const Computation::Cut& cut) {
    auto it = lat.index_.find(cut);
    if (it != lat.index_.end()) return it->second;
    if (lat.nodes_.size() >= max_nodes) {
      throw std::length_error("Lattice::build: lattice too large");
    }
    const int id = static_cast<int>(lat.nodes_.size());
    lat.index_.emplace(cut, id);
    Node node;
    node.cut = cut;
    node.succ.assign(static_cast<std::size_t>(n), -1);
    lat.nodes_.push_back(std::move(node));
    return id;
  };

  const Computation::Cut bottom = comp.bottom();
  const Computation::Cut top = comp.top();
  lat.bottom_ = intern(bottom);
  std::deque<int> work{lat.bottom_};
  while (!work.empty()) {
    const int id = work.front();
    work.pop_front();
    for (int p = 0; p < n; ++p) {
      // Copy: intern() may reallocate nodes_.
      Computation::Cut cut = lat.nodes_[static_cast<std::size_t>(id)].cut;
      if (!comp.can_advance(cut, p)) continue;
      ++cut[static_cast<std::size_t>(p)];
      const bool fresh = lat.index_.find(cut) == lat.index_.end();
      const int succ = intern(cut);
      lat.nodes_[static_cast<std::size_t>(id)].succ[static_cast<std::size_t>(p)] =
          succ;
      if (fresh) work.push_back(succ);
    }
  }
  lat.top_ = lat.find(top);
  if (lat.top_ < 0) {
    throw std::logic_error("Lattice::build: top cut unreachable");
  }
  return lat;
}

int Lattice::find(const Computation::Cut& cut) const {
  auto it = index_.find(cut);
  return it == index_.end() ? -1 : it->second;
}

double Lattice::num_paths() const {
  // Count paths by DP from top backwards; process nodes in decreasing
  // order of cut size. Nodes were created in BFS order from the bottom, so
  // reverse creation order is a valid topological order.
  std::vector<double> paths(nodes_.size(), 0.0);
  paths[static_cast<std::size_t>(top_)] = 1.0;
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    if (static_cast<int>(i) == top_) continue;
    double sum = 0.0;
    for (int succ : nodes_[i].succ) {
      if (succ >= 0) sum += paths[static_cast<std::size_t>(succ)];
    }
    paths[i] = sum;
  }
  return paths[static_cast<std::size_t>(bottom_)];
}

}  // namespace decmon
