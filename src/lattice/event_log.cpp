#include "decmon/lattice/event_log.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace decmon {
namespace {

const char* type_name(EventType t) {
  switch (t) {
    case EventType::kInitial: return "initial";
    case EventType::kInternal: return "internal";
    case EventType::kSend: return "send";
    case EventType::kReceive: return "receive";
  }
  return "?";
}

EventType type_from(const std::string& s) {
  if (s == "initial") return EventType::kInitial;
  if (s == "internal") return EventType::kInternal;
  if (s == "send") return EventType::kSend;
  if (s == "receive") return EventType::kReceive;
  throw std::runtime_error("event log: unknown event type '" + s + "'");
}

}  // namespace

std::string to_event_log(const Computation& comp) {
  std::ostringstream os;
  const int n = comp.num_processes();
  os << "eventlog v1\n";
  os << "processes " << n << "\n";
  for (int p = 0; p < n; ++p) {
    for (std::uint32_t sn = 0; sn <= comp.num_events(p); ++sn) {
      const Event& e = comp.event(p, sn);
      os << "event " << p << ' ' << sn << ' ' << type_name(e.type);
      for (std::size_t j = 0; j < e.vc.size(); ++j) os << ' ' << e.vc[j];
      os << ' ' << e.time << " vars " << e.state.size();
      for (std::int64_t v : e.state) os << ' ' << v;
      os << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

Computation computation_from_event_log(const std::string& text) {
  std::istringstream is(text);
  std::string word;
  auto expect = [&](const std::string& what) {
    if (!(is >> word) || word != what) {
      throw std::runtime_error("event log: expected '" + what + "', got '" +
                               word + "'");
    }
  };
  expect("eventlog");
  expect("v1");
  expect("processes");
  int n = 0;
  if (!(is >> n) || n < 1) {
    throw std::runtime_error("event log: bad process count");
  }
  std::vector<std::vector<Event>> events(static_cast<std::size_t>(n));
  while (is >> word && word != "end") {
    if (word != "event") {
      throw std::runtime_error("event log: expected 'event', got '" + word +
                               "'");
    }
    Event e;
    int proc = -1;
    std::string type;
    if (!(is >> proc >> e.sn >> type)) {
      throw std::runtime_error("event log: truncated event header");
    }
    if (proc < 0 || proc >= n) {
      throw std::runtime_error("event log: bad process index");
    }
    e.process = proc;
    e.type = type_from(type);
    e.vc = VectorClock(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      if (!(is >> e.vc[static_cast<std::size_t>(j)])) {
        throw std::runtime_error("event log: truncated vector clock");
      }
    }
    if (!(is >> e.time)) {
      throw std::runtime_error("event log: missing timestamp");
    }
    expect("vars");
    std::size_t k = 0;
    is >> k;
    if (k > 4096) throw std::runtime_error("event log: too many variables");
    e.state.resize(k);
    for (auto& v : e.state) {
      if (!(is >> v)) throw std::runtime_error("event log: truncated vars");
    }
    auto& hist = events[static_cast<std::size_t>(proc)];
    if (e.sn != hist.size()) {
      throw std::runtime_error("event log: out-of-order sequence numbers");
    }
    hist.push_back(std::move(e));
  }
  if (word != "end") throw std::runtime_error("event log: missing 'end'");
  return Computation(std::move(events));  // validates clocks and indexing
}

void save_event_log(const Computation& comp, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("event log: cannot open " + path);
  out << to_event_log(comp);
}

Computation load_event_log(const std::string& path,
                           const AtomRegistry* registry) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("event log: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Computation comp = computation_from_event_log(buffer.str());
  return registry ? relabel(comp, *registry) : comp;
}

Computation relabel(const Computation& comp, const AtomRegistry& registry) {
  std::vector<std::vector<Event>> events;
  const int n = comp.num_processes();
  events.resize(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    for (std::uint32_t sn = 0; sn <= comp.num_events(p); ++sn) {
      Event e = comp.event(p, sn);
      e.letter = registry.evaluate_local(p, e.state);
      events[static_cast<std::size_t>(p)].push_back(std::move(e));
    }
  }
  return Computation(std::move(events));
}

}  // namespace decmon
